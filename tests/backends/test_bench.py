"""Benchmark harness: timings, parity verdicts, report schema, JSON output."""

from __future__ import annotations

import json

import pytest

from repro.backends.bench import (
    BENCH_SCHEMA_VERSION,
    BackendTiming,
    bench_scenario_names,
    benchmark_scenario,
    run_benchmark,
)
from repro.scenarios.spec import PolicySpec, ScenarioSpec, SystemSpec


@pytest.fixture
def tiny_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="bench-tiny",
        kind="mc_point",
        system=SystemSpec.paper(),
        workload=(20, 12),
        policy=PolicySpec(kind="lbp1", gain=0.35, sender=0, receiver=1),
        mc_realisations=60,
        seed=21,
    )


class TestBenchmarkScenario:
    def test_times_both_backends_and_checks_parity(self, tiny_spec):
        result = benchmark_scenario(tiny_spec)
        assert set(result.timings) == {"reference", "vectorized"}
        for timing in result.timings.values():
            assert timing.wall_seconds > 0.0
            assert timing.realisations == 60
            assert timing.throughput > 0.0
        check = result.parity["vectorized"]
        assert 0.0 <= check.ks_statistic <= 1.0
        assert check.passed == (check.ks_pvalue > check.alpha)
        assert result.speedup("vectorized") is not None

    def test_rejects_non_mc_point_scenarios(self):
        with pytest.raises(ValueError, match="mc_point"):
            benchmark_scenario("fig4")

    def test_rejects_zero_repeats(self, tiny_spec):
        with pytest.raises(ValueError, match="repeats"):
            benchmark_scenario(tiny_spec, repeats=0)

    def test_seed_override(self, tiny_spec):
        result = benchmark_scenario(tiny_spec, seed=99)
        assert result.seed == 99


class TestReport:
    def test_report_schema_and_save(self, tiny_spec, tmp_path):
        report = run_benchmark(scenarios=[tiny_spec])
        payload = report.to_dict()
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert payload["backends"] == ["reference", "vectorized"]
        assert "all_parity_passed" in payload["summary"]
        assert "min_speedup_vectorized" in payload["summary"]
        (scenario,) = payload["scenarios"]
        assert scenario["name"] == "bench-tiny"
        assert "vectorized" in scenario["speedup_vs_reference"]

        path = report.save(tmp_path / "BENCH_results.json")
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(report.to_json())

    def test_render_mentions_backends_and_verdict(self, tiny_spec):
        report = run_benchmark(scenarios=[tiny_spec])
        rendered = report.render()
        assert "reference" in rendered
        assert "vectorized" in rendered
        assert "parity gate" in rendered

    def test_quick_set_resolves_in_registry(self):
        # Every scenario the harness would benchmark must resolve to an
        # mc_point spec (no stale names in QUICK_SCENARIOS or the registry).
        from repro.backends.bench import QUICK_SCENARIOS, _resolve_bench_spec

        for name in QUICK_SCENARIOS:
            assert _resolve_bench_spec(name, quick=True).kind == "mc_point"
        for name in bench_scenario_names():
            assert _resolve_bench_spec(name, quick=False).kind == "mc_point"


class TestTiming:
    def test_zero_wall_time_reports_infinite_throughput(self):
        timing = BackendTiming(
            backend="reference",
            wall_seconds=0.0,
            realisations=10,
            mean_completion_time=1.0,
            std_completion_time=0.1,
        )
        assert timing.throughput == float("inf")
