"""Fixtures for the results-service tests.

The in-process harness runs the real :class:`ResultsService` — real
sockets, real event loop — on a background thread, so the synchronous
:class:`ServiceClient` can drive it exactly the way external tooling
would.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.service.app import ResultsService
from repro.service.client import ServiceClient


class BackgroundService:
    """Run a ResultsService on its own event-loop thread."""

    def __init__(self, workers=None) -> None:
        self.workers = workers
        self.url = None
        self._loop = None
        self._stop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        service = ResultsService(workers=self.workers)
        host, port = await service.start("127.0.0.1", 0)
        self.url = f"http://{host}:{port}"
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await service.stop()

    def __enter__(self) -> "BackgroundService":
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("service did not start within 10s")
        return self

    def __exit__(self, *exc_info) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Every service test gets a private result cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


@pytest.fixture
def client():
    """A ServiceClient against a live in-process service."""
    with BackgroundService() as service:
        yield ServiceClient(service.url, timeout=30.0)
