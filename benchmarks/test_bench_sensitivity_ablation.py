"""Ablation benchmark: the attenuation effect claimed in the paper's conclusion.

Sweeps the failure rate and the per-task delay and checks that the optimal
LBP-1 gain is attenuated by either kind of uncertainty — the design insight
that distinguishes the paper's policies from delay/failure-oblivious
balancing.
"""

import pytest

from repro.experiments.sensitivity import delay_sensitivity_sweep, failure_rate_sweep


@pytest.mark.benchmark(group="sensitivity")
def test_failure_rate_attenuation(benchmark, bench_once):
    result = bench_once(
        benchmark, failure_rate_sweep, failure_rate_scales=(0.0, 0.5, 1.0, 2.0, 4.0)
    )
    print()
    print(result.render())
    assert result.gain_is_non_increasing
    assert result.optimal_gains[0] == pytest.approx(0.45)
    assert result.optimal_gains[-1] <= 0.30


@pytest.mark.benchmark(group="sensitivity")
def test_delay_attenuation(benchmark, bench_once):
    result = bench_once(
        benchmark, delay_sensitivity_sweep, delays_per_task=(0.0, 0.02, 0.1, 0.5, 1.0, 2.0)
    )
    print()
    print(result.render())
    assert result.gain_is_non_increasing
    assert result.optimal_gains[-1] < result.optimal_gains[0]
