"""Emulation of the paper's distributed-computing test-bed (Section 3).

The original evaluation ran on two physical hosts connected by an IEEE
802.11b/g wireless LAN, with an ANSI-C software stack organised in three
layers: *application* (randomised matrix–row multiplication tasks),
*communication* (UDP state-information exchange + TCP data transfer) and
*load-balancing / failure*.  That hardware is not available here, so this
package re-creates the same architecture on top of the discrete-event
kernel:

* :mod:`repro.testbed.application` — the matrix-multiplication application
  layer with randomised task sizes (and an optional real NumPy execution
  path used in the calibration example);
* :mod:`repro.testbed.communication` — message formats and the emulated
  UDP/TCP channels, including message loss and a shared wireless medium;
* :mod:`repro.testbed.balancer` — the load-balancing/failure layer that
  takes decisions from (possibly stale) exchanged state information;
* :mod:`repro.testbed.failure_injector` — the failure-injection process;
* :mod:`repro.testbed.experiment` — orchestration of complete experiments
  (the "Exp." columns of Tables 1 and 2);
* :mod:`repro.testbed.calibration` — the channel-probing and
  processing-speed estimation procedures behind Figs. 1 and 2.

The emulation deliberately differs from the clean Monte-Carlo model of
:mod:`repro.cluster` in the same ways the physical test-bed differs from the
analytical model: balancing decisions rely on delayed and occasionally lost
state messages, data transfers share one wireless medium, and there is a
per-transfer protocol overhead.  This is what makes the "experimental"
columns of the reproduced tables distinct from (yet close to) the
Monte-Carlo columns, as in the paper.
"""

from repro.testbed.application import (
    ApplicationLayer,
    MatrixWorkloadGenerator,
    TaskExecution,
)
from repro.testbed.communication import (
    CommunicationLayer,
    DataMessage,
    StateInfoMessage,
    WirelessChannel,
)
from repro.testbed.balancer import BalancerLayer
from repro.testbed.failure_injector import FailureInjector
from repro.testbed.experiment import TestbedConfig, TestbedExperiment, TestbedResult
from repro.testbed.calibration import (
    CalibrationResult,
    estimate_delay_model,
    estimate_processing_rates,
)

__all__ = [
    "ApplicationLayer",
    "BalancerLayer",
    "CalibrationResult",
    "CommunicationLayer",
    "DataMessage",
    "FailureInjector",
    "MatrixWorkloadGenerator",
    "StateInfoMessage",
    "TaskExecution",
    "TestbedConfig",
    "TestbedExperiment",
    "TestbedResult",
    "WirelessChannel",
    "estimate_delay_model",
    "estimate_processing_rates",
]
