"""Tests for the load-balancing/failure layer of the test-bed emulation."""

import pytest

from repro.core.policies import LBP1, LBP2
from repro.testbed.experiment import TestbedConfig, TestbedExperiment


class TestBalancerThroughExperiment:
    """The balancer layer needs the full wiring; these tests run tiny
    experiments and inspect the balancer's recorded actions."""

    def test_initial_balancing_executed_once_by_sender_only(self, fast_params):
        experiment = TestbedExperiment(
            fast_params, LBP1(0.5, sender=0, receiver=1), (20, 0), seed=1
        )
        experiment.run()
        assert len(experiment.balancers[0].initial_transfers_sent) == 1
        assert experiment.balancers[0].initial_transfers_sent[0].num_tasks == 10
        assert experiment.balancers[1].initial_transfers_sent == []

    def test_initial_decision_waits_for_state_exchange(self, fast_params):
        # With a long synchronisation window the t = 0 balancing action (and
        # therefore completion) cannot happen before the window has elapsed.
        config = TestbedConfig(sync_wait=0.5)
        experiment = TestbedExperiment(
            fast_params, LBP1(0.5, sender=0, receiver=1), (20, 0), seed=1, config=config
        )
        result = experiment.run()
        assert result.completion_time > 0.5

    def test_lbp2_compensation_recorded(self, paper_params):
        experiment = TestbedExperiment(paper_params, LBP2(1.0), (100, 60), seed=3)
        result = experiment.run()
        total_failures = sum(result.failures_per_node)
        if total_failures > 0:
            assert len(result.compensation_transfers) > 0
        assert result.tasks_completed_per_node[0] + result.tasks_completed_per_node[1] == 160

    def test_lbp1_never_compensates(self, paper_params):
        experiment = TestbedExperiment(
            paper_params, LBP1(0.35, sender=0, receiver=1), (100, 60), seed=3
        )
        result = experiment.run()
        assert result.compensation_transfers == []

    def test_balancer_decides_from_exchanged_state(self, fast_params):
        """The overloaded node identifies itself from the exchanged queue
        sizes and executes its own outgoing excess transfer."""
        lossless = TestbedExperiment(
            fast_params, LBP2(1.0), (10, 40), seed=5,
            config=TestbedConfig(state_loss_probability=0.0),
        )
        lossless.run()
        # Node 1 is overloaded relative to the speed-weighted fair share and sends.
        assert lossless.balancers[1].initial_transfers_sent
        assert lossless.balancers[0].initial_transfers_sent == []
