"""Sharded execution through the orchestrator, the cache and the CLI."""

import pytest

from repro.scenarios import Orchestrator
from repro.scenarios.orchestrator import apply_overrides
from repro.scenarios.spec import ScenarioSpec


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestApplyOverrides:
    def test_shards_override_folds_into_spec(self):
        from repro.scenarios import resolve

        spec = apply_overrides(resolve("smoke"), shards=3)
        assert spec.shards == 3

    def test_shards_participate_in_content_hash(self):
        from repro.scenarios import resolve

        base = resolve("smoke")
        assert apply_overrides(base, shards=3).content_hash != base.content_hash
        assert (
            apply_overrides(base, shards=3).content_hash
            != apply_overrides(base, shards=5).content_hash
        )

    def test_sharding_rejected_for_experiment_kinds(self):
        from repro.scenarios import resolve

        with pytest.raises(ValueError, match="cannot run sharded"):
            apply_overrides(resolve("fig1"), shards=2)


class TestOrchestratorSharded:
    def test_sharded_run_is_cached_and_reproducible(self):
        with Orchestrator(shard_executor="inline") as orch:
            first = orch.run("smoke", shards=2)
            assert not first.from_cache
            assert first.scalars["shards"] == 2
            again = orch.run("smoke", shards=2)
            assert again.from_cache
            assert again.scalars["mean_completion_time"] == pytest.approx(
                first.scalars["mean_completion_time"]
            )

    def test_different_shard_counts_share_blocks(self):
        with Orchestrator(shard_executor="inline") as orch:
            a = orch.run("smoke", shards=2)
            b = orch.run("smoke", shards=4)  # new top-level entry, cached blocks
            assert not b.from_cache
            assert b.scalars["mean_completion_time"] == a.scalars["mean_completion_time"]
            assert orch.shard_store.hits > 0

    def test_force_recomputes_shard_blocks_too(self):
        """--force must reach the shard store, not just the result cache."""
        with Orchestrator(shard_executor="inline") as orch:
            first = orch.run("smoke", shards=2)
            reads_before = orch.shard_store.hits + orch.shard_store.misses
            forced = orch.run("smoke", shards=2, force=True)
            assert not forced.from_cache
            # No shard-store reads happened: every block was recomputed.
            assert orch.shard_store.hits + orch.shard_store.misses == reads_before
            assert forced.scalars["mean_completion_time"] == first.scalars[
                "mean_completion_time"
            ]

    def test_sharded_differs_from_unsharded_cache_entry(self):
        """Sharded sampling is a different stream; it must not alias."""
        with Orchestrator(shard_executor="inline") as orch:
            sharded = orch.run("smoke", shards=2)
            unsharded = orch.run("smoke")
            assert not unsharded.from_cache
            assert sharded.spec_hash != unsharded.spec_hash

    def test_sharded_delay_point(self):
        with Orchestrator(shard_executor="inline") as orch:
            result = orch.run("delay-sweep/d=0.5", quick=True, shards=2)
            assert result.kind == "delay_point"
            assert result.scalars["winner"] in ("lbp1", "lbp2")

    def test_gain_sweep_family_points_are_sharded(self):
        from repro.scenarios import resolve

        point = resolve("gain-sweep/K=0.35", quick=True)
        assert point.shards == 2
        assert point.kind == "mc_point"


class TestCLI:
    def test_scenario_run_with_shards_flag(self, capsys):
        from repro.__main__ import main

        assert main(["scenario", "run", "smoke", "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "sharded: 2 shards" in out
        # Cached on re-run with the same shard count.
        assert main(["scenario", "run", "smoke", "--shards", "2"]) == 0
        assert "cached" in capsys.readouterr().out

    def test_worker_subcommand_requires_connect(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["worker"])


class TestSpecSchema:
    def test_defaults_round_trip(self):
        from repro.scenarios import resolve

        spec = resolve("smoke")
        assert spec.shards == 0
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec

    def test_old_payload_without_shard_fields_still_loads(self):
        from repro.scenarios import resolve

        payload = resolve("smoke").to_dict()
        del payload["shards"], payload["shard_block"]
        restored = ScenarioSpec.from_dict(payload)
        assert restored.shards == 0 and restored.shard_block == 32

    def test_validation(self):
        from repro.scenarios import resolve

        with pytest.raises(ValueError):
            resolve("smoke").with_(shards=-1)
        with pytest.raises(ValueError):
            resolve("smoke").with_(shard_block=0)
