"""The worker board, the board executor and the `repro worker` loop,
driven through a live in-process results service."""

import threading
import time

import pytest

from repro.distributed.worker import run_worker
from repro.service.shards import BoardExecutor, ShardBoard


def _quiet(*args, **kwargs):
    pass


class TestShardBoard:
    def test_register_claim_post_cycle(self):
        board = ShardBoard()
        worker_id = board.register("alpha")
        assert board.claim(worker_id) is None
        item = {"id": "i1", "shard": 0}
        board.assign(worker_id, item)
        assert board.claim(worker_id) == item
        assert board.post_result(worker_id, "i1", result={"blocks": []})
        (outcome,) = board.collect(timeout=0.1)
        assert outcome.ok and outcome.slot == worker_id

    def test_unknown_worker_rejected(self):
        board = ShardBoard()
        with pytest.raises(KeyError):
            board.claim("w-404")

    def test_late_result_after_abandon_is_ignored(self):
        board = ShardBoard()
        worker_id = board.register("alpha")
        board.assign(worker_id, {"id": "i1", "shard": 0})
        assert board.claim(worker_id) is not None
        board.abandon(worker_id, "i1")
        assert not board.post_result(worker_id, "i1", result={})
        assert board.collect(timeout=0.05) == []

    def test_dead_worker_unclaimed_items_fail_over(self):
        board = ShardBoard(worker_timeout=0.1)
        worker_id = board.register("ghost")
        board.assign(worker_id, {"id": "i1", "shard": 3})
        time.sleep(0.15)
        (outcome,) = board.collect(timeout=0.5)
        assert not outcome.ok and outcome.shard == 3
        assert "stopped polling" in outcome.error
        assert worker_id not in board.live_workers()

    def test_busy_worker_is_not_declared_dead(self):
        """A worker mid-shard does not poll; its claim keeps it a slot."""
        board = ShardBoard(worker_timeout=0.1)
        worker_id = board.register("busy")
        board.assign(worker_id, {"id": "i1", "shard": 0})
        assert board.claim(worker_id) is not None
        time.sleep(0.15)
        assert worker_id in board.live_workers()
        assert board.collect(timeout=0.05) == []

    def test_long_dead_workers_are_purged_from_the_board(self):
        board = ShardBoard(worker_timeout=0.01)
        board.register("corpse")
        time.sleep(0.15)  # > 10x worker_timeout
        board.collect(timeout=0.01)
        assert board.worker_views() == []
        # Re-registration (the respawn pattern) also sweeps corpses.
        board2 = ShardBoard(worker_timeout=0.01)
        board2.register("first")
        time.sleep(0.15)
        board2.register("second")
        assert [w["name"] for w in board2.worker_views()] == ["second"]

    def test_worker_with_claimed_item_survives_purge(self):
        board = ShardBoard(worker_timeout=0.01)
        worker_id = board.register("busy")
        board.assign(worker_id, {"id": "i1", "shard": 0})
        assert board.claim(worker_id) is not None
        time.sleep(0.15)
        board.collect(timeout=0.01)
        assert worker_id in board.live_workers()

    def test_board_executor_adapts_the_interface(self):
        board = ShardBoard()
        executor = BoardExecutor(board)
        worker_id = board.register("alpha")
        assert executor.slots() == (worker_id,)
        executor.start(worker_id, {"id": "i1", "shard": 0})
        assert board.claim(worker_id) is not None
        board.post_result(worker_id, "i1", error="boom")
        (outcome,) = executor.poll(0.1)
        assert outcome.error == "boom"


class TestWorkerLoopAgainstService:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    def _start_workers(self, url, count):
        threads = [
            threading.Thread(
                target=run_worker,
                args=(url,),
                kwargs=dict(name=f"test-{i}", max_idle=60, log=_quiet),
                daemon=True,
            )
            for i in range(count)
        ]
        for thread in threads:
            thread.start()
        return threads

    def test_sharded_job_runs_on_remote_workers(self, background_service):
        from repro.service.client import ServiceClient

        with background_service() as service:
            client = ServiceClient(service.url, timeout=30.0)
            self._start_workers(service.url, 2)

            job = client.submit(scenario="smoke", shards=2, executor="workers")
            view = client.wait(job.id, timeout=120)
            assert view.state == "done"
            assert view.completed_points == 1

            fleet = client.shard_workers()
            assert len(fleet) == 2
            assert sum(w["completed_shards"] for w in fleet) >= 1

            events = list(client.events(job.id))
            shard_events = [e["shard_event"] for e in events if "shard_event" in e]
            assert any(e["event"] == "dispatch" for e in shard_events)
            assert any(e["event"] == "done" for e in shard_events)
            assert all(e["point"] == "smoke" for e in shard_events)

    def test_remote_result_matches_local_sharded_run(self, background_service):
        from repro.distributed.runner import run_sharded_spec
        from repro.scenarios import resolve
        from repro.scenarios.orchestrator import apply_overrides
        from repro.service.client import ServiceClient

        spec = apply_overrides(resolve("smoke"), shards=2)
        local = run_sharded_spec(spec, executor="inline", use_store=False)

        with background_service() as service:
            client = ServiceClient(service.url, timeout=30.0)
            self._start_workers(service.url, 1)
            job = client.submit(scenario="smoke", shards=2, executor="workers")
            view = client.wait(job.id, timeout=120)
            fetched = client.result(view.content_hashes[0])
        assert fetched.scalars["mean_completion_time"] == pytest.approx(
            float(local.estimate.summary.mean)
        )

    def test_executor_workers_without_fleet_fails_cleanly(self, background_service):
        from repro.service.client import ServiceClient

        with background_service(shard_options={"slot_wait": 1.0}) as service:
            client = ServiceClient(service.url, timeout=30.0)
            job = client.submit(
                scenario="smoke", shards=2, seed=999, executor="workers"
            )
            # No worker ever registers: the scheduler gives up after its
            # slot-wait and the job fails with a clear error.
            deadline = time.monotonic() + 30
            view = client.job(job.id)
            while time.monotonic() < deadline and not view.finished:
                time.sleep(0.2)
                view = client.job(job.id)
            assert view.state == "failed"
            assert "no executor slot" in view.error
