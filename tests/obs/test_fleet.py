"""Fleet aggregation: relabelled worker snapshots, idempotent ingest."""

from repro.obs.fleet import (
    FleetAggregator,
    relabel_snapshot,
    render_fleet_table,
)
from repro.obs.metrics import MetricsRegistry, render_many


def worker_registry(items_ok=3, blocks=12, busy=1.5, claims=(0.01, 0.02)):
    """A registry shaped like a ``repro worker`` process' own."""
    registry = MetricsRegistry()
    registry.counter(
        "repro_worker_items_total", "items", labelnames=("outcome",)
    ).labels(outcome="ok").inc(items_ok)
    registry.counter("repro_worker_blocks_total", "blocks").inc(blocks)
    registry.counter("repro_worker_busy_seconds_total", "busy").inc(busy)
    claim = registry.histogram("repro_worker_claim_seconds", "claim latency")
    for latency in claims:
        claim.observe(latency)
    return registry


class TestRelabelSnapshot:
    def test_injects_label_on_every_series(self):
        snapshot = relabel_snapshot(worker_registry().snapshot(), worker="w-a")
        for family in snapshot.values():
            assert "worker" in family["labelnames"]
            for series in family["series"]:
                assert series["labels"]["worker"] == "w-a"


class TestFleetAggregator:
    def test_registry_renders_worker_labelled_series(self):
        fleet = FleetAggregator()
        fleet.ingest("id-a", worker_registry().snapshot(), seq=1, name="w-a")
        fleet.ingest("id-b", worker_registry().snapshot(), seq=1, name="w-b")
        rendered = fleet.registry().render()
        assert 'repro_worker_blocks_total{worker="w-a"}' in rendered
        assert 'repro_worker_blocks_total{worker="w-b"}' in rendered

    def test_reposted_snapshot_is_idempotent(self):
        # A worker re-posts the same cumulative snapshot after an HTTP
        # retry: the aggregate must not double-count.
        fleet = FleetAggregator()
        snapshot = worker_registry(blocks=12).snapshot()
        assert fleet.ingest("id-a", snapshot, seq=4, name="w-a") is True
        before = fleet.summary()["fleet"]["blocks"]
        assert fleet.ingest("id-a", snapshot, seq=4, name="w-a") is True
        assert fleet.summary()["fleet"]["blocks"] == before == 12

    def test_stale_seq_is_dropped(self):
        fleet = FleetAggregator()
        fresh = worker_registry(blocks=20).snapshot()
        stale = worker_registry(blocks=5).snapshot()
        fleet.ingest("id-a", fresh, seq=7, name="w-a")
        assert fleet.ingest("id-a", stale, seq=3, name="w-a") is False
        assert fleet.summary()["fleet"]["blocks"] == 20

    def test_summary_derives_per_worker_stats(self):
        clock = iter([100.0, 110.0]).__next__  # ingest, then summary
        fleet = FleetAggregator(clock=clock)
        fleet.ingest(
            "id-a",
            worker_registry(items_ok=5, busy=4.0, claims=(0.01, 0.03)).snapshot(),
            seq=1,
            name="w-a",
        )
        summary = fleet.summary()
        (worker,) = summary["workers"]
        assert worker["name"] == "w-a"
        assert worker["items_ok"] == 5
        assert worker["busy_fraction"] == 4.0 / 10.0
        assert worker["items_per_second"] == 0.5
        assert worker["claim_seconds_mean"] == 0.02
        assert summary["fleet"]["size"] == 1

    def test_forget_removes_the_worker(self):
        fleet = FleetAggregator()
        fleet.ingest("id-a", worker_registry().snapshot(), seq=1, name="w-a")
        fleet.forget("id-a")
        assert fleet.worker_ids() == []
        assert fleet.summary()["fleet"]["size"] == 0


class TestRenderMany:
    def test_union_keeps_service_and_fleet_families_apart(self):
        service = MetricsRegistry()
        service.counter("repro_http_requests_total", "requests").inc(2)
        fleet = FleetAggregator()
        fleet.ingest("id-a", worker_registry().snapshot(), seq=1, name="w-a")
        rendered = render_many(service, fleet.registry())
        assert "repro_http_requests_total 2" in rendered
        assert 'repro_worker_blocks_total{worker="w-a"}' in rendered
        # One HELP line per family, even across registries.
        assert rendered.count("# HELP repro_worker_blocks_total") == 1


class TestRenderFleetTable:
    def test_table_lists_workers_and_fleet_row(self):
        fleet = FleetAggregator()
        fleet.ingest("id-a", worker_registry().snapshot(), seq=1, name="w-a")
        table = render_fleet_table(fleet.summary())
        lines = table.splitlines()
        assert lines[0].startswith("worker")
        assert any(line.startswith("w-a") for line in lines)
        assert any(line.startswith("fleet (1)") for line in lines)


class TestClaimQuantiles:
    def test_summary_carries_claim_p50_and_p95(self):
        fleet = FleetAggregator()
        fleet.ingest(
            "id-a",
            worker_registry(claims=(0.01, 0.01, 0.01, 0.2)).snapshot(),
            seq=1,
            name="w-a",
        )
        summary = fleet.summary()
        (worker,) = summary["workers"]
        assert 0.0 < worker["claim_seconds_p50"] <= worker["claim_seconds_p95"]
        # The p95 lands in the slow observation's bucket, not the fast one.
        assert worker["claim_seconds_p95"] > 0.1
        assert summary["fleet"]["claim_seconds_p50"] == worker["claim_seconds_p50"]

    def test_fleet_quantiles_pool_across_workers(self):
        fleet = FleetAggregator()
        fleet.ingest(
            "id-a", worker_registry(claims=(0.01,) * 9).snapshot(), seq=1, name="w-a"
        )
        fleet.ingest(
            "id-b", worker_registry(claims=(3.0,) * 9).snapshot(), seq=1, name="w-b"
        )
        summary = fleet.summary()
        pooled = summary["fleet"]["claim_seconds_p95"]
        assert pooled > 1.0  # the slow worker dominates the pooled tail
        by_name = {w["name"]: w for w in summary["workers"]}
        assert by_name["w-a"]["claim_seconds_p95"] < 0.1

    def test_no_observations_yield_none(self):
        fleet = FleetAggregator()
        fleet.ingest(
            "id-a", worker_registry(claims=()).snapshot(), seq=1, name="w-a"
        )
        (worker,) = fleet.summary()["workers"]
        assert worker["claim_seconds_p50"] is None
        assert worker["claim_seconds_p95"] is None

    def test_table_has_quantile_columns(self):
        fleet = FleetAggregator()
        fleet.ingest("id-a", worker_registry().snapshot(), seq=1, name="w-a")
        table = render_fleet_table(fleet.summary())
        header = table.splitlines()[0]
        assert "p50 ms" in header
        assert "p95 ms" in header
