"""Core library: the paper's load-balancing policies and stochastic analysis.

This package implements the primary contribution of

    S. Dhakal, M. M. Hayat, J. E. Pezoa, C. T. Abdallah, J. D. Birdwell and
    J. Chiasson, "Load Balancing in the Presence of Random Node Failure and
    Recovery", IPDPS 2006.

namely

* :mod:`repro.core.parameters` — the parameterisation of a distributed
  system of computing elements with exponential service, failure, recovery
  and load-transfer-delay laws;
* :mod:`repro.core.policies` — the preemptive policy **LBP-1**, the
  reactive (act-on-failure) policy **LBP-2**, and baseline policies;
* :mod:`repro.core.completion_time` — regeneration-theory solvers for the
  expected overall completion time of the two-node system (eq. (4) of the
  paper), with a reference recursion, a vectorised sweep and a sparse
  absorbing-CTMC formulation;
* :mod:`repro.core.distribution` — solvers for the distribution function of
  the overall completion time (eq. (5));
* :mod:`repro.core.nofailure` — the no-failure special case used to select
  the initial gain of LBP-2;
* :mod:`repro.core.optimize` — optimal-gain and sender/receiver selection;
* :mod:`repro.core.multinode` — the n-node generalisation (the paper notes
  the extension is straightforward; it is carried out here);
* :mod:`repro.core.arrivals` — dynamic variants with external workload
  arrivals (sketched in the paper's conclusion).
"""

# Lazily re-exported (PEP 562): the solver stack pulls scipy, which costs
# close to a second of import time, while frequent consumers (the scenario
# spec/cache layer, the CLI's cached paths) only need the parameter
# dataclasses.  Attribute access resolves and memoises on first use.
_EXPORTS = {
    "repro.core.parameters": (
        "NodeParameters",
        "SystemParameters",
        "TransferDelayModel",
        "paper_parameters",
        "paper_two_node_parameters",
    ),
    "repro.core.policies": (
        "LBP1",
        "LBP2",
        "LoadBalancingPolicy",
        "NoBalancing",
        "ProportionalOneShot",
        "SendAllOnFailure",
        "Transfer",
    ),
    "repro.core.completion_time": (
        "CompletionTimeSolver",
        "expected_completion_time",
        "expected_completion_time_lbp1",
    ),
    "repro.core.distribution": (
        "completion_time_cdf",
        "completion_time_cdf_lbp1",
    ),
    "repro.core.nofailure": ("expected_completion_time_no_failure",),
    "repro.core.optimize": (
        "GainOptimizationResult",
        "optimal_gain_lbp1",
        "optimal_gain_no_failure",
    ),
}

_NAME_TO_MODULE = {
    name: module for module, names in _EXPORTS.items() for name in names
}


def __getattr__(name: str):
    module_name = _NAME_TO_MODULE.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))


__all__ = [
    "LBP1",
    "LBP2",
    "CompletionTimeSolver",
    "GainOptimizationResult",
    "LoadBalancingPolicy",
    "NoBalancing",
    "NodeParameters",
    "ProportionalOneShot",
    "SendAllOnFailure",
    "SystemParameters",
    "Transfer",
    "TransferDelayModel",
    "completion_time_cdf",
    "completion_time_cdf_lbp1",
    "expected_completion_time",
    "expected_completion_time_lbp1",
    "expected_completion_time_no_failure",
    "optimal_gain_lbp1",
    "optimal_gain_no_failure",
    "paper_parameters",
    "paper_two_node_parameters",
]
