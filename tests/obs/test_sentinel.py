"""The regression sentinel: rolling-baseline classification of runs."""

from __future__ import annotations

import pytest

from repro.obs.history import RunLedger
from repro.obs import sentinel
from repro.obs.sentinel import (
    CheckResult,
    SentinelReport,
    check_value,
    classify,
    comparable_records,
    evaluate,
    export_verdicts,
)


@pytest.fixture
def ledger(tmp_path) -> RunLedger:
    return RunLedger(tmp_path / "history")


def _bench(ledger, throughput, **fields):
    record = {
        "kind": "bench",
        "scenario": "mc-scaling",
        "backend": "reference",
        "realisations": 2000,
        "seed": 1234,
        "shards": 8,
        "worker_count": 1,
        "wall_seconds": 2000.0 / throughput,
        "throughput": throughput,
        "skipped": False,
    }
    record.update(fields)
    return ledger.append(record)


def _engine_run(ledger, *, wall=2.0, cached=0, total=8, **fields):
    record = {
        "kind": "run",
        "scenario": "smoke",
        "spec_hash": "abc123",
        "backend": "reference",
        "executor": "InlineExecutor",
        "effective_cpus": 1,
        "realisations": 2000,
        "blocks_total": total,
        "blocks_cached": cached,
        "wall_seconds": wall,
        "timings": {"dispatch_overhead_seconds": 0.01},
    }
    record.update(fields)
    return ledger.append(record)


class TestClassify:
    def test_value_within_baseline_is_ok(self):
        result = classify(1000.0, [990.0, 1000.0, 1010.0], higher_better=True)
        assert result.status == "ok"
        assert result.baseline_median == 1000.0

    def test_moderate_drift_warns(self):
        # MAD is 0 for an identical baseline, so the 25 % median floor
        # sets the warn band and the 50 % floor the regression band.
        result = classify(700.0, [1000.0] * 5, higher_better=True)
        assert result.status == "warn"

    def test_large_drift_regresses(self):
        result = classify(450.0, [1000.0] * 5, higher_better=True)
        assert result.status == "regressed"
        assert "drifted" in result.detail

    def test_three_x_slowdown_always_regresses(self):
        result = classify(1000.0 / 3, [1000.0] * 5, higher_better=True)
        assert result.status == "regressed"

    def test_improvement_is_never_flagged(self):
        result = classify(100000.0, [1000.0] * 5, higher_better=True)
        assert result.status == "ok"

    def test_lower_better_direction(self):
        fast = classify(0.001, [0.5] * 5, higher_better=False)
        slow = classify(5.0, [0.5] * 5, higher_better=False)
        assert fast.status == "ok"
        assert slow.status == "regressed"

    def test_abs_floor_suppresses_microsecond_jitter(self):
        # 2 ms of drift on a 1 ms dispatch overhead is a 200 % swing but
        # far below the 50 ms floor — must stay ok.
        result = classify(
            0.003, [0.001] * 5, higher_better=False, abs_floor=0.05
        )
        assert result.status == "ok"

    def test_none_value_is_skipped(self):
        result = classify(None, [1.0] * 5, higher_better=True)
        assert result.status == "skipped"
        assert "not measured" in result.detail

    def test_thin_baseline_is_skipped(self):
        result = classify(1.0, [1.0, 1.0], higher_better=True)
        assert result.status == "skipped"
        assert result.baseline_size == 2

    def test_min_records_override(self):
        result = classify(1.0, [1.0], higher_better=True, min_records=1)
        assert result.status == "ok"


class TestCheckValue:
    def test_bench_record_measures_only_throughput(self):
        record = {"kind": "bench", "throughput": 500.0}
        assert check_value(record, "throughput") == 500.0
        assert check_value(record, "dispatch_overhead") is None
        assert check_value(record, "cache_hit_ratio") is None

    def test_run_throughput_counts_computed_realisations_only(self):
        record = {
            "kind": "run",
            "realisations": 1000,
            "blocks_total": 10,
            "blocks_cached": 5,
            "wall_seconds": 2.0,
        }
        # Half the blocks came from cache: 1000 * 0.5 / 2s = 250/s.
        assert check_value(record, "throughput") == 250.0

    def test_fully_cached_run_has_no_throughput(self):
        record = {
            "kind": "run",
            "realisations": 1000,
            "blocks_total": 10,
            "blocks_cached": 10,
            "wall_seconds": 0.01,
        }
        assert check_value(record, "throughput") is None
        assert check_value(record, "dispatch_overhead") is None
        assert check_value(record, "cache_hit_ratio") == 1.0

    def test_unknown_check_raises(self):
        with pytest.raises(ValueError, match="unknown sentinel check"):
            check_value({"kind": "run"}, "latency_p99")


class TestComparableRecords:
    def test_matches_on_bench_fields_and_excludes_self(self, ledger):
        for _ in range(3):
            _bench(ledger, 1000.0)
        other_backend = _bench(ledger, 1000.0, backend="vectorized")
        other_workers = _bench(ledger, 1000.0, worker_count=2)
        fresh = _bench(ledger, 900.0)
        history = comparable_records(ledger, fresh)
        ids = {r["id"] for r in history}
        assert len(history) == 3
        assert fresh["id"] not in ids
        assert other_backend["id"] not in ids
        assert other_workers["id"] not in ids

    def test_matches_run_records_on_spec_and_executor(self, ledger):
        for _ in range(2):
            _engine_run(ledger)
        other_spec = _engine_run(ledger, spec_hash="fff")
        other_exec = _engine_run(ledger, executor="ProcessExecutor")
        fresh = _engine_run(ledger)
        ids = {r["id"] for r in comparable_records(ledger, fresh)}
        assert len(ids) == 2
        assert other_spec["id"] not in ids
        assert other_exec["id"] not in ids

    def test_window_caps_history(self, ledger):
        for _ in range(10):
            _bench(ledger, 1000.0)
        fresh = _bench(ledger, 1000.0)
        assert len(comparable_records(ledger, fresh, window=4)) == 4


class TestEvaluate:
    def test_injected_three_x_slowdown_is_flagged_regressed(self, ledger):
        for _ in range(3):
            _bench(ledger, 1200.0)
        slow = _bench(ledger, 400.0)
        report = evaluate(ledger, slow, checks=("throughput",))
        assert report.status == "regressed"
        assert report.regressed is True
        (check,) = report.checks
        assert check.check == "throughput"
        assert check.baseline_median == 1200.0

    def test_steady_throughput_is_ok(self, ledger):
        for value in (1000.0, 1010.0, 990.0):
            _bench(ledger, value)
        report = evaluate(ledger, _bench(ledger, 1005.0), checks=("throughput",))
        assert report.status == "ok"
        assert not report.regressed

    def test_timeshared_bench_record_is_never_judged(self, ledger):
        for _ in range(3):
            _bench(ledger, 1000.0, worker_count=2, skipped=True)
        fresh = _bench(ledger, 10.0, worker_count=2, skipped=True)
        report = evaluate(ledger, fresh)
        assert report.status == "skipped"
        assert all("timeshared" in c.detail for c in report.checks)

    def test_run_record_judges_all_three_checks(self, ledger):
        for _ in range(3):
            _engine_run(ledger)
        report = evaluate(ledger, _engine_run(ledger))
        assert [c.check for c in report.checks] == [
            "throughput",
            "dispatch_overhead",
            "cache_hit_ratio",
        ]
        assert report.status == "ok"

    def test_overall_status_is_the_worst_check(self, ledger):
        for _ in range(3):
            _engine_run(ledger)
        # Same compute profile, 10x the wall time: throughput collapses
        # while cache ratio and dispatch overhead stay put.
        slow = _engine_run(ledger, wall=20.0)
        report = evaluate(ledger, slow)
        by_name = {c.check: c.status for c in report.checks}
        assert by_name["throughput"] == "regressed"
        assert by_name["cache_hit_ratio"] == "ok"
        assert report.status == "regressed"

    def test_empty_history_skips(self, ledger):
        report = evaluate(ledger, _bench(ledger, 1000.0), checks=("throughput",))
        assert report.status == "skipped"
        assert "0 comparable" in report.checks[0].detail

    def test_render_mentions_verdict_and_baseline(self, ledger):
        for _ in range(3):
            _bench(ledger, 1000.0)
        report = evaluate(ledger, _bench(ledger, 100.0), checks=("throughput",))
        text = report.render()
        assert "sentinel verdict: regressed" in text
        assert "baseline 1000" in text

    def test_to_dict_is_json_shaped(self, ledger):
        report = evaluate(ledger, _bench(ledger, 1000.0))
        payload = report.to_dict()
        assert payload["record_id"] == report.record_id
        assert payload["status"] == "skipped"
        assert all("check" in c and "status" in c for c in payload["checks"])


class TestExportVerdicts:
    def test_judged_checks_set_the_gauge(self):
        report = SentinelReport(
            record_id="x",
            checks=[
                CheckResult(check="throughput", status="regressed"),
                CheckResult(check="cache_hit_ratio", status="ok"),
            ],
        )
        export_verdicts(report)
        gauge = sentinel._VERDICT
        assert gauge.labels(check="throughput").get() == 2
        assert gauge.labels(check="cache_hit_ratio").get() == 0

    def test_skipped_checks_leave_the_gauge_untouched(self):
        gauge = sentinel._VERDICT
        gauge.labels(check="throughput").set(0)
        export_verdicts(
            SentinelReport(
                record_id="x",
                checks=[CheckResult(check="throughput", status="skipped")],
            )
        )
        assert gauge.labels(check="throughput").get() == 0
