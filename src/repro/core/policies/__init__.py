"""Load-balancing policies.

* :class:`LBP1` — the paper's preemptive policy: a single one-way transfer of
  ``K * m_sender`` tasks at ``t = 0`` chosen with knowledge of the failure
  and recovery statistics (Section 2.1).
* :class:`LBP2` — the paper's reactive policy: an initial excess-load
  balancing action that ignores failures (eqs. (6)–(7)), plus a compensation
  transfer of ``L^F_ij`` tasks (eq. (8)) issued by the failing node's backup
  system at every failure instant (Section 2.2).
* Baselines: :class:`NoBalancing`, :class:`ProportionalOneShot`,
  :class:`SendAllOnFailure`.

All policies implement the :class:`LoadBalancingPolicy` protocol consumed by
the discrete-event simulator (:mod:`repro.cluster.system`) and by the
test-bed emulation (:mod:`repro.testbed`).
"""

from repro.core.policies.base import LoadBalancingPolicy, Transfer
from repro.core.policies.excess import (
    excess_loads,
    fair_shares,
    initial_excess_transfers,
    partition_fractions,
)
from repro.core.policies.lbp1 import LBP1
from repro.core.policies.lbp2 import LBP2, compensation_transfer_sizes
from repro.core.policies.baselines import (
    NoBalancing,
    ProportionalOneShot,
    SendAllOnFailure,
)

__all__ = [
    "LBP1",
    "LBP2",
    "LoadBalancingPolicy",
    "NoBalancing",
    "ProportionalOneShot",
    "SendAllOnFailure",
    "Transfer",
    "compensation_transfer_sizes",
    "excess_loads",
    "fair_shares",
    "initial_excess_transfers",
    "partition_fractions",
]
