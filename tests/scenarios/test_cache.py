"""Cache round-trip, hit/miss accounting and environment override."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenarios.cache import CACHE_DIR_ENV, ResultCache, ScenarioResult, cache_key
from repro.scenarios.spec import PolicySpec, ScenarioSpec, SystemSpec


@pytest.fixture
def spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="cached",
        kind="mc_point",
        system=SystemSpec.paper(),
        workload=(20, 12),
        policy=PolicySpec(kind="lbp1", gain=0.35, sender=0, receiver=1),
        mc_realisations=3,
        seed=9,
    )


def make_result(spec: ScenarioSpec) -> ScenarioResult:
    return ScenarioResult(
        name=spec.name,
        kind=spec.kind,
        spec_hash=spec.content_hash,
        scalars={"mean_completion_time": 14.409, "winner": "lbp1", "none": None},
        arrays={
            "completion_times": np.array([9.7, 14.4, 23.9]),
            "grid": np.arange(5, dtype=np.int64),
        },
        rendered="line one\nline two",
        runtime_seconds=1.25,
    )


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        assert cache.get(spec) is None
        assert not cache.contains(spec)
        assert cache.misses == 1

        cache.put(spec, make_result(spec))
        assert cache.contains(spec)
        loaded = cache.get(spec)
        assert loaded is not None
        assert cache.hits == 1

    def test_round_trip_is_bit_identical(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        original = make_result(spec)
        cache.put(spec, original)
        loaded = cache.get(spec)
        assert loaded.identical_to(original)
        assert loaded.from_cache and not original.from_cache
        assert loaded.rendered == original.rendered
        assert loaded.scalars == original.scalars
        np.testing.assert_array_equal(
            loaded.arrays["completion_times"], original.arrays["completion_times"]
        )
        assert loaded.arrays["grid"].dtype == np.int64
        assert loaded.runtime_seconds == original.runtime_seconds

    def test_different_spec_is_a_miss(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        cache.put(spec, make_result(spec))
        assert cache.get(spec.with_(seed=10)) is None

    def test_entry_is_keyed_by_cache_key(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        cache.put(spec, make_result(spec))
        key = cache_key(spec)
        assert key != spec.content_hash
        assert (tmp_path / key[:2] / key / "meta.json").is_file()
        # A renamed but otherwise identical spec hits the same entry, and the
        # loaded result carries the requesting spec's name, not the stored one.
        renamed = cache.get(spec.with_(name="renamed"))
        assert renamed is not None
        assert renamed.name == "renamed"


class TestCacheKey:
    def test_key_is_stable(self, spec):
        assert cache_key(spec) == cache_key(spec)

    def test_backend_participates_in_key(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        cache.put(spec, make_result(spec))
        vectorized = spec.with_(backend="vectorized")
        assert cache_key(vectorized) != cache_key(spec)
        # A result computed by one kernel is never served for another.
        assert cache.get(vectorized) is None

    def test_package_version_participates_in_key(self, tmp_path, spec, monkeypatch):
        cache = ResultCache(tmp_path)
        cache.put(spec, make_result(spec))
        import repro.scenarios.cache as cache_module

        monkeypatch.setattr(cache_module, "__version__", "999.0.0")
        assert cache.get(spec) is None

    def test_meta_records_provenance(self, tmp_path, spec):
        import json

        cache = ResultCache(tmp_path)
        entry = cache.put(spec, make_result(spec))
        meta = json.loads((entry / "meta.json").read_text())
        assert meta["backend"] == "reference"
        assert meta["repro_version"]
        assert meta["cache_key"] == cache_key(spec)
        assert meta["spec_hash"] == spec.content_hash


class TestMaintenance:
    def test_len_evict_clear(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put(spec, make_result(spec))
        other = spec.with_(seed=11)
        cache.put(other, make_result(other))
        assert len(cache) == 2
        assert cache.evict(spec)
        assert not cache.evict(spec)
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_corrupt_meta_reads_as_miss(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        entry = cache.put(spec, make_result(spec))
        (entry / "meta.json").write_text("{ not json")
        assert cache.get(spec) is None

    def test_overwrite_replaces_entry(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        cache.put(spec, make_result(spec))
        updated = make_result(spec)
        updated.rendered = "updated"
        cache.put(spec, updated)
        assert cache.get(spec).rendered == "updated"


class TestEnvironment:
    def test_env_var_sets_root(self, tmp_path, monkeypatch, spec):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "envcache"))
        cache = ResultCache()
        assert cache.root == tmp_path / "envcache"
        cache.put(spec, make_result(spec))
        assert ResultCache().get(spec) is not None

    def test_explicit_root_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "envcache"))
        cache = ResultCache(tmp_path / "explicit")
        assert cache.root == tmp_path / "explicit"
