"""Tests for gain/delay sweeps and policy comparisons."""

import numpy as np
import pytest

from repro.core.policies import LBP1, LBP2, NoBalancing
from repro.montecarlo.sweep import (
    DelaySweepResult,
    GainSweepResult,
    compare_policies,
    delay_sweep,
    gain_sweep,
)


class TestGainSweep:
    def test_structure_and_agreement(self, fast_params):
        gains = [0.0, 0.3, 0.6, 0.9]
        result = gain_sweep(
            fast_params, (40, 5), gains, num_realisations=60, seed=0
        )
        assert isinstance(result, GainSweepResult)
        assert len(result.theoretical) == len(gains)
        assert len(result.simulated) == len(gains)
        assert result.theoretical_no_failure is not None
        # Monte-Carlo curve tracks the theoretical one reasonably closely.
        relative_error = np.abs(result.simulated - result.theoretical) / result.theoretical
        assert np.all(relative_error < 0.25)

    def test_no_failure_curve_optional(self, fast_params):
        result = gain_sweep(
            fast_params, (20, 5), [0.2, 0.8], num_realisations=20, seed=0,
            include_no_failure=False,
        )
        assert result.theoretical_no_failure is None

    def test_rows_rendering(self, fast_params):
        result = gain_sweep(fast_params, (20, 5), [0.2, 0.8], num_realisations=10, seed=0)
        rows = result.as_rows()
        assert len(rows) == 2
        assert set(rows[0]) >= {"gain", "theory", "simulation", "simulation_ci"}

    def test_optimal_gain_properties(self, fast_params):
        gains = np.linspace(0, 1, 6)
        result = gain_sweep(fast_params, (40, 5), gains, num_realisations=40, seed=1)
        assert result.optimal_gain_theory in gains
        assert result.optimal_gain_simulation in gains


class TestDelaySweep:
    def test_crossover_detection(self, fast_params):
        result = DelaySweepResult(
            delays=np.array([0.1, 1.0, 2.0]),
            lbp1_means=np.array([10.0, 11.0, 12.0]),
            lbp2_means=np.array([9.0, 11.5, 14.0]),
        )
        assert result.crossover_delay == 1.0

    def test_no_crossover_returns_none(self):
        result = DelaySweepResult(
            delays=np.array([0.1, 1.0]),
            lbp1_means=np.array([10.0, 11.0]),
            lbp2_means=np.array([9.0, 10.5]),
        )
        assert result.crossover_delay is None

    def test_rows(self):
        result = DelaySweepResult(
            delays=np.array([0.1]),
            lbp1_means=np.array([10.0]),
            lbp2_means=np.array([9.0]),
            lbp1_theory=np.array([10.2]),
        )
        rows = result.as_rows()
        assert rows[0]["delay_per_task"] == 0.1
        assert rows[0]["lbp1_theory"] == 10.2

    def test_end_to_end_small(self, fast_params):
        result = delay_sweep(
            fast_params,
            (30, 5),
            delays_per_task=[0.005, 0.2],
            num_realisations=40,
            seed=2,
        )
        assert len(result.lbp1_means) == 2
        assert np.all(result.lbp1_means > 0)
        assert np.all(result.lbp2_means > 0)
        # Larger delays cannot make either policy faster.
        assert result.lbp1_means[1] >= result.lbp1_means[0] - 0.5
        assert result.lbp2_means[1] >= result.lbp2_means[0] - 0.5


class TestComparePolicies:
    def test_returns_one_estimate_per_policy(self, fast_params):
        estimates = compare_policies(
            fast_params,
            (30, 5),
            [NoBalancing(), LBP1(0.5), LBP2(1.0)],
            num_realisations=30,
            seed=0,
        )
        assert set(estimates) == {"no-balancing", "LBP-1", "LBP-2"}

    def test_duplicate_names_uniquified(self, fast_params):
        estimates = compare_policies(
            fast_params, (20, 5), [LBP1(0.3), LBP1(0.9)], num_realisations=10, seed=0
        )
        assert len(estimates) == 2

    def test_balancing_beats_no_balancing_for_skewed_load(self, fast_params):
        estimates = compare_policies(
            fast_params, (60, 0), [NoBalancing(), LBP1(0.6)], num_realisations=60, seed=1
        )
        assert (
            estimates["LBP-1"].mean_completion_time
            < estimates["no-balancing"].mean_completion_time
        )
