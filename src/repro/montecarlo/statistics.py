"""Summary statistics of Monte-Carlo outputs.

Two families of tools live here:

* **whole-sample summaries** — :func:`summarize` reduces a completed sample
  to a :class:`SummaryStatistics` (mean, dispersion, Student-t confidence
  interval), and the empirical-CDF helpers back Fig. 5;
* **mergeable accumulators** — :class:`RunningStatistics`,
  :class:`MergeableHistogram` and :class:`QuantileSketch` reduce a sample
  *incrementally* and can be merged across shards.  They exist for the
  distributed execution path (:mod:`repro.distributed`), where each shard
  reduces its realisations locally and only the accumulator states travel
  back to the scheduler.

The accumulators keep their first and second moments in **exactly-rounded
sums** (Shewchuk's algorithm, the machinery behind :func:`math.fsum`), so
``merge`` is associative and commutative *in exact arithmetic*: the merged
mean/variance is bit-identical however the sample was partitioned into
shards.  A plain Welford/Chan parallel merge would drift by a few ulps per
merge order; exact summation is what makes the shard-count-invariance
guarantee of the distributed runner testable with ``==``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Sequence, Tuple

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class SummaryStatistics:
    """Mean, dispersion and confidence interval of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float
    confidence_level: float

    @property
    def standard_error(self) -> float:
        """Standard error of the mean."""
        if self.n == 0:
            return float("nan")
        return self.std / math.sqrt(self.n)

    @property
    def half_width(self) -> float:
        """Half width of the confidence interval."""
        return 0.5 * (self.ci_high - self.ci_low)

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the confidence interval."""
        return self.ci_low <= value <= self.ci_high


def summarize(values: Sequence[float], confidence_level: float = 0.95) -> SummaryStatistics:
    """Compute :class:`SummaryStatistics` of a sample.

    Uses the Student-t critical value, matching standard discrete-event
    simulation output analysis practice.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot summarise an empty sample")
    if not 0 < confidence_level < 1:
        raise ValueError(f"confidence_level must lie in (0, 1), got {confidence_level!r}")
    mean = float(data.mean())
    std = float(data.std(ddof=1)) if data.size > 1 else 0.0
    if data.size > 1 and std > 0:
        half = float(
            stats.t.ppf(0.5 + confidence_level / 2.0, df=data.size - 1)
            * std
            / math.sqrt(data.size)
        )
    else:
        half = 0.0
    return SummaryStatistics(
        n=int(data.size),
        mean=mean,
        std=std,
        minimum=float(data.min()),
        maximum=float(data.max()),
        ci_low=mean - half,
        ci_high=mean + half,
        confidence_level=confidence_level,
    )


# ---------------------------------------------------------------------------
# Mergeable accumulators (the reduction side of sharded Monte-Carlo)
# ---------------------------------------------------------------------------


class ExactSum:
    """An exactly-rounded running sum of floats (Shewchuk partials).

    The partials list represents the *real-valued* sum with no rounding
    error at all; :attr:`value` rounds it once, correctly.  Because the
    representation is exact, :meth:`merge` is associative and commutative:
    the same multiset of addends always produces the same partials sum and
    therefore the same rounded value, however it was partitioned.
    """

    __slots__ = ("partials",)

    def __init__(self, partials: Iterable[float] = ()) -> None:
        self.partials: List[float] = [float(p) for p in partials]

    def add(self, x: float) -> None:
        """Add ``x`` exactly (standard Shewchuk grow-expansion step)."""
        x = float(x)
        partials = self.partials
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]

    def merge(self, other: "ExactSum") -> None:
        """Fold ``other`` into this sum (exact, order-independent)."""
        for p in other.partials:
            self.add(p)

    @property
    def value(self) -> float:
        """The correctly-rounded float value of the exact sum."""
        return math.fsum(self.partials)

    def copy(self) -> "ExactSum":
        return ExactSum(self.partials)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ExactSum({self.value!r})"


@dataclass
class RunningStatistics:
    """Mergeable first/second-moment accumulator with exact summation.

    The distributed runner's per-shard reduction: each shard folds its
    completion times in with :meth:`update` (or :meth:`from_values`), the
    scheduler merges the shard states with :meth:`merge`, and the merged
    accumulator renders the same :class:`SummaryStatistics` a whole-sample
    :func:`summarize` would — bit-identical for any shard partitioning of
    the same sample, because the sums underneath are exact.
    """

    count: int = 0
    total: ExactSum = field(default_factory=ExactSum)
    total_sq: ExactSum = field(default_factory=ExactSum)
    minimum: float = math.inf
    maximum: float = -math.inf

    def update(self, value: float) -> None:
        """Fold one observation in."""
        value = float(value)
        self.count += 1
        self.total.add(value)
        self.total_sq.add(value * value)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def update_many(self, values: Sequence[float]) -> None:
        for value in np.asarray(values, dtype=float).ravel():
            self.update(float(value))

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "RunningStatistics":
        acc = cls()
        acc.update_many(values)
        return acc

    def merge(self, other: "RunningStatistics") -> "RunningStatistics":
        """Fold ``other`` into this accumulator (returns ``self``)."""
        self.count += other.count
        self.total.merge(other.total)
        self.total_sq.merge(other.total_sq)
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    @classmethod
    def merged(cls, parts: Iterable["RunningStatistics"]) -> "RunningStatistics":
        acc = cls()
        for part in parts:
            acc.merge(part)
        return acc

    # -- derived moments ---------------------------------------------------

    @property
    def n(self) -> int:
        return self.count

    @property
    def mean(self) -> float:
        if self.count == 0:
            return float("nan")
        return self.total.value / self.count

    @property
    def variance(self) -> float:
        """Unbiased sample variance (``ddof=1``), non-negative by clamping."""
        if self.count < 2:
            return 0.0
        mean = self.mean
        m2 = self.total_sq.value - self.count * mean * mean
        return max(m2, 0.0) / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def to_summary(self, confidence_level: float = 0.95) -> SummaryStatistics:
        """Render the accumulated state as a :class:`SummaryStatistics`."""
        if self.count == 0:
            raise ValueError("cannot summarise an empty accumulator")
        if not 0 < confidence_level < 1:
            raise ValueError(
                f"confidence_level must lie in (0, 1), got {confidence_level!r}"
            )
        mean = self.mean
        std = self.std
        if self.count > 1 and std > 0:
            half = float(
                stats.t.ppf(0.5 + confidence_level / 2.0, df=self.count - 1)
                * std
                / math.sqrt(self.count)
            )
        else:
            half = 0.0
        return SummaryStatistics(
            n=self.count,
            mean=mean,
            std=std,
            minimum=self.minimum,
            maximum=self.maximum,
            ci_low=mean - half,
            ci_high=mean + half,
            confidence_level=confidence_level,
        )

    # -- serialization (shard results travel as JSON) ----------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe state; float partials round-trip exactly via ``repr``."""
        return {
            "count": self.count,
            "total": list(self.total.partials),
            "total_sq": list(self.total_sq.partials),
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunningStatistics":
        count = int(payload["count"])
        return cls(
            count=count,
            total=ExactSum(payload["total"]),
            total_sq=ExactSum(payload["total_sq"]),
            minimum=math.inf if payload.get("min") is None else float(payload["min"]),
            maximum=-math.inf if payload.get("max") is None else float(payload["max"]),
        )


@dataclass
class MergeableHistogram:
    """Fixed-edge histogram with integer counts — merge is exact addition.

    The bin layout ``(low, high, bins)`` must be agreed before any data is
    seen (it is part of the shard contract), which is what makes two shard
    histograms mergeable; observations outside ``[low, high)`` land in the
    underflow/overflow counters instead of being dropped.
    """

    low: float
    high: float
    bins: int
    counts: List[int] = field(default_factory=list)
    underflow: int = 0
    overflow: int = 0

    def __post_init__(self) -> None:
        if self.bins < 1:
            raise ValueError(f"bins must be >= 1, got {self.bins!r}")
        if not self.high > self.low:
            raise ValueError(f"need high > low, got [{self.low!r}, {self.high!r})")
        if not self.counts:
            self.counts = [0] * self.bins
        elif len(self.counts) != self.bins:
            raise ValueError(
                f"counts length {len(self.counts)} != bins {self.bins}"
            )

    @property
    def total(self) -> int:
        return self.underflow + sum(self.counts) + self.overflow

    @property
    def edges(self) -> np.ndarray:
        return np.linspace(self.low, self.high, self.bins + 1)

    def update(self, value: float) -> None:
        value = float(value)
        if value < self.low:
            self.underflow += 1
        elif value >= self.high:
            self.overflow += 1
        else:
            width = (self.high - self.low) / self.bins
            index = min(int((value - self.low) / width), self.bins - 1)
            self.counts[index] += 1

    def update_many(self, values: Sequence[float]) -> None:
        for value in np.asarray(values, dtype=float).ravel():
            self.update(float(value))

    def compatible_with(self, other: "MergeableHistogram") -> bool:
        return (
            self.low == other.low
            and self.high == other.high
            and self.bins == other.bins
        )

    def merge(self, other: "MergeableHistogram") -> "MergeableHistogram":
        if not self.compatible_with(other):
            raise ValueError(
                f"cannot merge histograms with different layouts: "
                f"[{self.low}, {self.high})×{self.bins} vs "
                f"[{other.low}, {other.high})×{other.bins}"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.underflow += other.underflow
        self.overflow += other.overflow
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "low": self.low,
            "high": self.high,
            "bins": self.bins,
            "counts": list(self.counts),
            "underflow": self.underflow,
            "overflow": self.overflow,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MergeableHistogram":
        return cls(
            low=float(payload["low"]),
            high=float(payload["high"]),
            bins=int(payload["bins"]),
            counts=[int(c) for c in payload["counts"]],
            underflow=int(payload.get("underflow", 0)),
            overflow=int(payload.get("overflow", 0)),
        )


@dataclass
class QuantileSketch:
    """A streaming quantile estimator built on a mergeable histogram.

    Deterministic and partition-invariant by construction (integer bin
    counts merge exactly), unlike sampling sketches.  Quantile queries
    interpolate linearly inside the containing bin and clamp to the exact
    observed ``min``/``max``, so the sketch's accuracy is bounded by the
    bin width while its extremes are exact.
    """

    histogram: MergeableHistogram
    minimum: float = math.inf
    maximum: float = -math.inf

    @classmethod
    def with_range(
        cls, low: float, high: float, bins: int = 128
    ) -> "QuantileSketch":
        return cls(histogram=MergeableHistogram(low=low, high=high, bins=bins))

    @property
    def count(self) -> int:
        return self.histogram.total

    def update(self, value: float) -> None:
        value = float(value)
        self.histogram.update(value)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def update_many(self, values: Sequence[float]) -> None:
        for value in np.asarray(values, dtype=float).ravel():
            self.update(float(value))

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        self.histogram.merge(other.histogram)
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (``q`` in [0, 1]) of the stream."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must lie in [0, 1], got {q!r}")
        total = self.count
        if total == 0:
            raise ValueError("cannot query an empty sketch")
        if q == 0.0:
            return self.minimum
        if q == 1.0:
            return self.maximum
        hist = self.histogram
        target = q * total
        running = float(hist.underflow)
        if target <= running:
            return self.minimum
        width = (hist.high - hist.low) / hist.bins
        for index, count in enumerate(hist.counts):
            if count and target <= running + count:
                inside = (target - running) / count
                left = hist.low + index * width
                return min(max(left + inside * width, self.minimum), self.maximum)
            running += count
        return self.maximum

    def to_dict(self) -> Dict[str, Any]:
        return {
            "histogram": self.histogram.to_dict(),
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "QuantileSketch":
        return cls(
            histogram=MergeableHistogram.from_dict(payload["histogram"]),
            minimum=math.inf if payload.get("min") is None else float(payload["min"]),
            maximum=-math.inf if payload.get("max") is None else float(payload["max"]),
        )


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of a sample: returns ``(sorted values, F(values))``.

    Used to compare the Monte-Carlo completion times against the analytical
    CDF of eq. (5) (Fig. 5).
    """
    data = np.sort(np.asarray(list(values), dtype=float))
    if data.size == 0:
        raise ValueError("cannot build an empirical CDF from an empty sample")
    probabilities = np.arange(1, data.size + 1) / data.size
    return data, probabilities


def evaluate_empirical_cdf(values: Sequence[float], grid: Sequence[float]) -> np.ndarray:
    """Evaluate the empirical CDF of ``values`` on an arbitrary time grid."""
    data = np.sort(np.asarray(list(values), dtype=float))
    if data.size == 0:
        raise ValueError("cannot build an empirical CDF from an empty sample")
    grid_arr = np.asarray(grid, dtype=float)
    return np.searchsorted(data, grid_arr, side="right") / data.size
