"""Random-variate distributions used by the simulation model.

The paper models per-task service times, node failure times, node recovery
times and load-transfer delays as exponential random variables (Section 2),
and validates the exponential approximation against measurements (Figs. 1
and 2).  This module provides the exponential law plus a few alternatives
(deterministic, Erlang, hyper-exponential, uniform, empirical) used for
sensitivity studies and for the test-bed emulation.

All distributions share a tiny protocol: ``sample(rng)`` draws one variate,
``sample_many(rng, n)`` draws a vector, and ``mean`` / ``rate`` expose the
first moment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


class Distribution:
    """Base class for non-negative random-variate distributions."""

    def sample(self, rng: np.random.Generator) -> float:
        """Draw a single variate."""
        raise NotImplementedError

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` variates as a NumPy array (default: loop over sample)."""
        return np.array([self.sample(rng) for _ in range(n)], dtype=float)

    @property
    def mean(self) -> float:
        """First moment of the distribution."""
        raise NotImplementedError

    @property
    def rate(self) -> float:
        """Inverse of the mean (``inf`` for a zero-mean distribution)."""
        mean = self.mean
        if mean == 0.0:
            return math.inf
        return 1.0 / mean


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential distribution parameterised by its *rate* (events/unit time).

    This is the law assumed throughout the paper's analysis for service,
    failure, recovery and transfer-delay times.
    """

    rate_: float

    def __post_init__(self) -> None:
        if self.rate_ <= 0 or not math.isfinite(self.rate_):
            raise ValueError(f"rate must be positive and finite, got {self.rate_!r}")

    @classmethod
    def from_mean(cls, mean: float) -> "Exponential":
        """Build the distribution from its mean instead of its rate."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        return cls(1.0 / mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate_))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(1.0 / self.rate_, size=n)

    @property
    def mean(self) -> float:
        return 1.0 / self.rate_

    @property
    def rate(self) -> float:
        return self.rate_


@dataclass(frozen=True)
class Deterministic(Distribution):
    """Degenerate distribution that always returns ``value``."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"value must be non-negative, got {self.value!r}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.value)

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, float(self.value))

    @property
    def mean(self) -> float:
        return float(self.value)


@dataclass(frozen=True)
class Erlang(Distribution):
    """Erlang distribution: sum of ``shape`` iid exponentials of rate ``rate_``.

    Used as an alternative transfer-delay model in which each task in a batch
    contributes an independent exponential delay (so the total delay of a
    batch of ``L`` tasks is Erlang-``L``), matching the empirically observed
    linear growth of the mean delay with load size (Fig. 2, bottom).
    """

    shape: int
    rate_: float

    def __post_init__(self) -> None:
        if self.shape < 1:
            raise ValueError(f"shape must be >= 1, got {self.shape!r}")
        if self.rate_ <= 0:
            raise ValueError(f"rate must be positive, got {self.rate_!r}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.gamma(self.shape, 1.0 / self.rate_))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.gamma(self.shape, 1.0 / self.rate_, size=n)

    @property
    def mean(self) -> float:
        return self.shape / self.rate_


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform distribution on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError(f"invalid bounds [{self.low!r}, {self.high!r}]")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)


@dataclass(frozen=True)
class HyperExponential(Distribution):
    """Mixture of exponentials (higher variability than exponential).

    With probability ``probabilities[k]`` the variate is exponential with
    rate ``rates[k]``.  Useful to stress the robustness of the policies to
    heavier-tailed service times than the model assumes.
    """

    rates: tuple
    probabilities: tuple

    def __post_init__(self) -> None:
        rates = tuple(float(r) for r in self.rates)
        probs = tuple(float(p) for p in self.probabilities)
        object.__setattr__(self, "rates", rates)
        object.__setattr__(self, "probabilities", probs)
        if len(rates) != len(probs) or not rates:
            raise ValueError("rates and probabilities must be equal-length, non-empty")
        if any(r <= 0 for r in rates):
            raise ValueError("all rates must be positive")
        if any(p < 0 for p in probs) or not math.isclose(sum(probs), 1.0, abs_tol=1e-9):
            raise ValueError("probabilities must be non-negative and sum to 1")

    def sample(self, rng: np.random.Generator) -> float:
        k = rng.choice(len(self.rates), p=self.probabilities)
        return float(rng.exponential(1.0 / self.rates[k]))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        ks = rng.choice(len(self.rates), size=n, p=self.probabilities)
        scales = 1.0 / np.asarray(self.rates)
        return rng.exponential(scales[ks])

    @property
    def mean(self) -> float:
        return float(
            sum(p / r for p, r in zip(self.probabilities, self.rates))
        )


class Empirical(Distribution):
    """Resampling (bootstrap) distribution over observed samples.

    Used by the calibration workflow: measured per-task processing times or
    transfer delays can be plugged straight back into the simulator.
    """

    def __init__(self, samples: Sequence[float]) -> None:
        data = np.asarray(list(samples), dtype=float)
        if data.size == 0:
            raise ValueError("need at least one sample")
        if np.any(data < 0):
            raise ValueError("samples must be non-negative")
        self._samples = data

    @property
    def samples(self) -> np.ndarray:
        """The underlying observations (read-only view)."""
        view = self._samples.view()
        view.flags.writeable = False
        return view

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.choice(self._samples))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.choice(self._samples, size=n)

    @property
    def mean(self) -> float:
        return float(self._samples.mean())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Empirical(n={self._samples.size}, mean={self.mean:.4g})"
