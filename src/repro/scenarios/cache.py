"""Content-addressed on-disk result store for scenario runs.

The cache directory contains one sub-directory per :func:`cache_key`
(sharded by the first two hex digits, the git object-store layout) holding

* ``meta.json`` — the spec that produced the result, the scalar outputs and
  the rendered text report, and
* ``arrays.npz`` — every array output, stored losslessly so a cache hit is
  bit-identical to the original computation.

:func:`cache_key` folds the package version and the spec's
execution-backend name into :attr:`ScenarioSpec.content_hash`: a new
release (which may change any kernel) or a different backend can never be
served a stale result computed by another.

The cache root is, in order of precedence, the ``root`` constructor
argument, the ``REPRO_CACHE_DIR`` environment variable, or
``~/.cache/repro``.  Corrupt or partially-written entries are treated as
misses and overwritten on the next store.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro._version import __version__
from repro.scenarios.spec import ScenarioSpec

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Fallback cache root when neither argument nor environment specify one.
DEFAULT_CACHE_DIR = "~/.cache/repro"

#: Version of the on-disk entry layout; bumped on incompatible changes so
#: stale entries read as misses instead of loading garbage.
#:
#: History: 2 — ``meta.json`` records the producing package version and
#: execution backend.
CACHE_FORMAT_VERSION = 2


def cache_key(spec: ScenarioSpec) -> str:
    """The on-disk key for ``spec``: content hash salted with provenance.

    The salt covers the package version and the backend name (the backend
    is also inside the content hash, but keeping it visible in the key
    derivation makes the invalidation contract explicit): upgrading the
    package or switching kernels can never surface a result computed under
    the old code.
    """
    backend = getattr(spec, "backend", "reference")
    payload = f"{spec.content_hash}\nrepro=={__version__}\nbackend={backend}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class ScenarioResult:
    """Uniform, serializable outcome of one scenario run.

    Every runner kind reduces its artefact to the same three channels —
    ``scalars`` (headline numbers), ``arrays`` (the curves/samples behind
    them) and ``rendered`` (the plain-text report) — which is what makes
    results cacheable and comparable across kinds.
    """

    name: str
    kind: str
    spec_hash: str
    scalars: Dict[str, Any] = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    rendered: str = ""
    runtime_seconds: float = 0.0
    from_cache: bool = False

    def render(self) -> str:
        """The plain-text report (mirrors the experiment drivers' API)."""
        return self.rendered

    def identical_to(self, other: "ScenarioResult") -> bool:
        """Bit-exact equality of the scientific content (not provenance)."""
        if (
            self.spec_hash != other.spec_hash
            or self.scalars != other.scalars
            or self.rendered != other.rendered
            or set(self.arrays) != set(other.arrays)
        ):
            return False
        return all(
            self.arrays[k].shape == other.arrays[k].shape
            and self.arrays[k].dtype == other.arrays[k].dtype
            and np.array_equal(self.arrays[k], other.arrays[k])
            for k in self.arrays
        )


class ResultCache:
    """Content-addressed store mapping spec hashes to :class:`ScenarioResult`."""

    def __init__(self, root: Union[None, str, Path] = None) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = Path(root).expanduser()
        self.hits = 0
        self.misses = 0

    # -- layout ------------------------------------------------------------

    def key_for(self, spec: ScenarioSpec) -> str:
        """The cache key of ``spec`` (see :func:`cache_key`)."""
        return cache_key(spec)

    def entry_dir(self, key: str) -> Path:
        """Directory holding the entry for cache key ``key``."""
        return self.root / key[:2] / key

    def contains(self, spec: ScenarioSpec) -> bool:
        """Whether a completed entry exists for this spec."""
        return (self.entry_dir(self.key_for(spec)) / "meta.json").is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*/meta.json"))

    # -- store / load ------------------------------------------------------

    def put(self, spec: ScenarioSpec, result: ScenarioResult) -> Path:
        """Persist ``result`` under the spec's cache key (atomically)."""
        key = self.key_for(spec)
        entry = self.entry_dir(key)
        entry.parent.mkdir(parents=True, exist_ok=True)
        staging = Path(
            tempfile.mkdtemp(prefix=f".{key[:12]}-", dir=entry.parent)
        )
        try:
            meta = {
                "format_version": CACHE_FORMAT_VERSION,
                "repro_version": __version__,
                "backend": getattr(spec, "backend", "reference"),
                "spec": spec.to_dict(),
                "spec_hash": spec.content_hash,
                "cache_key": key,
                "name": result.name,
                "kind": result.kind,
                "scalars": result.scalars,
                "rendered": result.rendered,
                "runtime_seconds": result.runtime_seconds,
            }
            if result.arrays:
                np.savez(staging / "arrays.npz", **result.arrays)
            # meta.json is written last: its presence marks the entry complete.
            (staging / "meta.json").write_text(
                json.dumps(meta, sort_keys=True, indent=1)
            )
            if entry.exists():
                shutil.rmtree(entry)
            try:
                staging.rename(entry)
            except OSError:
                # Lost a race against another process storing the same
                # content-addressed entry; its result is identical by
                # construction, so keep it and discard ours.
                if not (entry / "meta.json").is_file():
                    raise
                shutil.rmtree(staging, ignore_errors=True)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        return entry

    def get(self, spec: ScenarioSpec) -> Optional[ScenarioResult]:
        """Load the cached result for ``spec``, or ``None`` on a miss."""
        entry = self.entry_dir(self.key_for(spec))
        meta_path = entry / "meta.json"
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if meta.get("format_version") != CACHE_FORMAT_VERSION:
            self.misses += 1
            return None
        arrays: Dict[str, np.ndarray] = {}
        npz_path = entry / "arrays.npz"
        if npz_path.is_file():
            try:
                with np.load(npz_path) as npz:
                    arrays = {key: npz[key] for key in npz.files}
            except (OSError, ValueError):
                self.misses += 1
                return None
        self.hits += 1
        # The requesting spec's name wins over the stored one: renames keep
        # cached results valid (the name is excluded from the content hash),
        # and the caller should see the name it asked for.
        return ScenarioResult(
            name=spec.name,
            kind=meta["kind"],
            spec_hash=spec.content_hash,
            scalars=meta["scalars"],
            arrays=arrays,
            rendered=meta["rendered"],
            runtime_seconds=meta["runtime_seconds"],
            from_cache=True,
        )

    # -- maintenance -------------------------------------------------------

    def evict(self, spec: ScenarioSpec) -> bool:
        """Drop the entry for ``spec``; returns whether one existed."""
        entry = self.entry_dir(self.key_for(spec))
        if entry.exists():
            shutil.rmtree(entry)
            return True
        return False

    def clear(self) -> int:
        """Drop every entry; returns the number removed."""
        removed = len(self)
        if self.root.is_dir():
            shutil.rmtree(self.root)
        return removed
