"""Tests for work-state enumeration and reachability."""

import numpy as np
import pytest

from repro.core.parameters import NodeParameters, SystemParameters
from repro.core.state import (
    all_work_states,
    initial_work_state,
    reachable_work_states,
    state_index_map,
    transition_rate,
    validate_work_state,
    work_state_rate_matrix,
)


def two_node_params(f1=0.05, r1=0.1, f2=0.05, r2=0.05):
    return SystemParameters(
        nodes=(
            NodeParameters(1.0, failure_rate=f1, recovery_rate=r1),
            NodeParameters(2.0, failure_rate=f2, recovery_rate=r2),
        )
    )


class TestEnumeration:
    def test_all_work_states_two_nodes(self):
        assert all_work_states(2) == ((0, 0), (0, 1), (1, 0), (1, 1))

    def test_all_work_states_three_nodes_count(self):
        assert len(all_work_states(3)) == 8

    def test_all_work_states_rejects_zero(self):
        with pytest.raises(ValueError):
            all_work_states(0)

    def test_validate_work_state(self):
        assert validate_work_state([1, 0], 2) == (1, 0)
        with pytest.raises(ValueError):
            validate_work_state([1], 2)
        with pytest.raises(ValueError):
            validate_work_state([1, 2], 2)

    def test_initial_work_state_from_params(self):
        params = SystemParameters(
            nodes=(
                NodeParameters(1.0),
                NodeParameters(1.0, recovery_rate=0.5, initially_up=False),
            )
        )
        assert initial_work_state(params) == (1, 0)

    def test_state_index_map(self):
        states = ((0, 0), (1, 1))
        assert state_index_map(states) == {(0, 0): 0, (1, 1): 1}


class TestTransitionRates:
    def test_failure_transition(self):
        params = two_node_params()
        assert transition_rate((1, 1), (0, 1), params) == pytest.approx(0.05)
        assert transition_rate((1, 1), (1, 0), params) == pytest.approx(0.05)

    def test_recovery_transition(self):
        params = two_node_params()
        assert transition_rate((0, 1), (1, 1), params) == pytest.approx(0.1)
        assert transition_rate((1, 0), (1, 1), params) == pytest.approx(0.05)

    def test_non_adjacent_states_have_zero_rate(self):
        params = two_node_params()
        assert transition_rate((1, 1), (0, 0), params) == 0.0
        assert transition_rate((0, 0), (1, 1), params) == 0.0
        assert transition_rate((1, 1), (1, 1), params) == 0.0

    def test_rate_matrix_matches_scalar_rates(self):
        params = two_node_params()
        states = all_work_states(2)
        matrix = work_state_rate_matrix(states, params)
        for i, src in enumerate(states):
            for j, dst in enumerate(states):
                if i == j:
                    assert matrix[i, j] == 0.0
                else:
                    assert matrix[i, j] == transition_rate(src, dst, params)

    def test_rate_matrix_paper_structure(self, paper_params):
        """The off-diagonal pattern matches the A1 matrix structure of eq. (5)."""
        states = all_work_states(2)
        matrix = work_state_rate_matrix(states, paper_params)
        # From (1,1) one can only go to (0,1) and (1,0).
        idx = {state: k for k, state in enumerate(states)}
        row = matrix[idx[(1, 1)]]
        assert row[idx[(0, 1)]] > 0 and row[idx[(1, 0)]] > 0
        assert row[idx[(0, 0)]] == 0.0


class TestReachability:
    def test_full_reachability_with_failures(self, paper_params):
        assert reachable_work_states((1, 1), paper_params) == (
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
        )

    def test_no_failure_only_initial_state(self, no_failure_params):
        assert reachable_work_states((1, 1), no_failure_params) == ((1, 1),)

    def test_one_failing_node_reaches_two_states(self):
        params = SystemParameters(
            nodes=(
                NodeParameters(1.0, failure_rate=0.1, recovery_rate=0.2),
                NodeParameters(2.0),
            )
        )
        assert reachable_work_states((1, 1), params) == ((0, 1), (1, 1))

    def test_initially_down_node_without_failures(self):
        params = SystemParameters(
            nodes=(
                NodeParameters(1.0, recovery_rate=0.5, initially_up=False),
                NodeParameters(2.0),
            )
        )
        assert reachable_work_states((0, 1), params) == ((0, 1), (1, 1))
