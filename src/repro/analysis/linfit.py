"""Linear regression of the mean transfer delay against the batch size.

Fig. 2 (bottom) of the paper shows the mean transfer delay growing linearly
with the number of tasks transferred, at roughly 0.02 s per task on the
wireless test-bed.  The slope of this fit is exactly the
``mean_delay_per_task`` parameter of
:class:`repro.core.parameters.TransferDelayModel`, which makes this module
the bridge between calibration measurements and the analytical model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LinearFit:
    """Least-squares fit ``y ≈ slope · x + intercept``."""

    slope: float
    intercept: float
    r_squared: float
    n_points: int

    def predict(self, x: Sequence[float]) -> np.ndarray:
        """Evaluate the fitted line at ``x``."""
        return self.slope * np.asarray(x, dtype=float) + self.intercept


def fit_linear(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Ordinary least squares fit of ``y`` against ``x``."""
    x_arr = np.asarray(list(x), dtype=float)
    y_arr = np.asarray(list(y), dtype=float)
    if x_arr.shape != y_arr.shape:
        raise ValueError("x and y must have the same length")
    if x_arr.size < 2:
        raise ValueError("need at least two points for a linear fit")
    design = np.vstack([x_arr, np.ones_like(x_arr)]).T
    (slope, intercept), residual, _rank, _sv = np.linalg.lstsq(design, y_arr, rcond=None)
    total = float(np.sum((y_arr - y_arr.mean()) ** 2))
    if total == 0.0:
        r_squared = 1.0
    else:
        predicted = slope * x_arr + intercept
        r_squared = 1.0 - float(np.sum((y_arr - predicted) ** 2)) / total
    return LinearFit(
        slope=float(slope),
        intercept=float(intercept),
        r_squared=float(r_squared),
        n_points=int(x_arr.size),
    )
