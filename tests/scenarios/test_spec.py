"""Spec serialization and content-hash stability."""

from __future__ import annotations

import json

import pytest

from repro.scenarios.spec import (
    DelaySpec,
    NodeSpec,
    PolicySpec,
    ScenarioSpec,
    SystemSpec,
)


def make_spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="test",
        kind="mc_point",
        system=SystemSpec.paper(),
        workload=(100, 60),
        policy=PolicySpec(kind="lbp1", gain=0.35, sender=0, receiver=1),
        mc_realisations=10,
        seed=42,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestContentHash:
    def test_same_spec_same_hash(self):
        assert make_spec().content_hash == make_spec().content_hash

    def test_hash_is_hex_sha256(self):
        digest = make_spec().content_hash
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex

    def test_name_excluded_from_hash(self):
        assert make_spec(name="a").content_hash == make_spec(name="b").content_hash

    @pytest.mark.parametrize(
        "override",
        [
            {"seed": 43},
            {"mc_realisations": 11},
            {"workload": (100, 61)},
            {"policy": PolicySpec(kind="lbp1", gain=0.40, sender=0, receiver=1)},
            {"policy": PolicySpec(kind="lbp2", gain=0.35)},
            {"kind": "delay_point"},
            {"gains": (0.1, 0.2)},
            {"system": SystemSpec.paper(mean_delay_per_task=0.5)},
        ],
    )
    def test_changed_field_changes_hash(self, override):
        assert make_spec(**override).content_hash != make_spec().content_hash

    def test_option_order_irrelevant(self):
        a = make_spec(options=(("x", 1), ("y", 2)))
        b = make_spec(options=(("y", 2), ("x", 1)))
        assert a.content_hash == b.content_hash

    def test_option_value_changes_hash(self):
        a = make_spec(options=(("x", 1),))
        b = make_spec(options=(("x", 2),))
        assert a.content_hash != b.content_hash


class TestSerialization:
    def test_json_round_trip_preserves_spec(self):
        spec = make_spec(
            gains=(0.0, 0.5, 1.0),
            delays=(0.01, 2.0),
            options=(("workloads", ((50, 0), (25, 50))), ("flag", True)),
        )
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.content_hash == spec.content_hash

    def test_to_json_is_byte_stable(self):
        assert make_spec().to_json() == make_spec().to_json()

    def test_to_json_is_canonical(self):
        payload = json.loads(make_spec().to_json())
        assert list(payload) == sorted(payload)
        assert payload["spec_version"] == 4
        assert payload["backend"] == "reference"

    def test_lists_normalised_to_tuples(self):
        spec = make_spec(workload=[30, 20], gains=[0.1, 0.2])
        assert spec.workload == (30, 20)
        assert spec.gains == (0.1, 0.2)

    def test_with_overrides_copies(self):
        spec = make_spec()
        other = spec.with_(seed=7)
        assert spec.seed == 42 and other.seed == 7
        assert other.content_hash != spec.content_hash

    def test_option_lookup(self):
        spec = make_spec(options=(("tasks", 500),))
        assert spec.option("tasks") == 500
        assert spec.option("missing", "dflt") == "dflt"
        merged = spec.with_options(extra=1)
        assert merged.option("tasks") == 500 and merged.option("extra") == 1


class TestBuild:
    def test_system_spec_round_trip(self):
        params = SystemSpec.paper().to_parameters()
        assert params.num_nodes == 2
        assert params.service_rates == (1.08, 1.86)
        assert SystemSpec.from_parameters(params) == SystemSpec.paper()

    def test_policy_build_pinned_gain(self):
        params = SystemSpec.paper().to_parameters()
        policy = PolicySpec(kind="lbp1", gain=0.35, sender=0, receiver=1).build(
            params, (100, 60)
        )
        assert policy.gain == 0.35

    def test_policy_build_optimal_gain(self):
        params = SystemSpec.paper().to_parameters()
        policy = PolicySpec(kind="lbp1", gain=None).build(params, (100, 60))
        assert policy.gain == pytest.approx(0.35, abs=0.051)

    def test_unknown_policy_kind_rejected(self):
        with pytest.raises(ValueError):
            PolicySpec(kind="magic")

    def test_negative_realisations_rejected(self):
        with pytest.raises(ValueError):
            make_spec(mc_realisations=-1)

    def test_node_and_delay_specs_round_trip(self):
        node = NodeSpec(service_rate=2.0, failure_rate=0.1, recovery_rate=0.2)
        assert NodeSpec.from_parameters(node.to_parameters()) == node
        delay = DelaySpec(mean_delay_per_task=0.5, kind="erlang")
        assert DelaySpec.from_model(delay.to_model()) == delay


class TestBackendField:
    def test_default_backend_is_reference(self):
        assert make_spec().backend == "reference"

    def test_backend_participates_in_content_hash(self):
        reference = make_spec()
        vectorized = make_spec(backend="vectorized")
        assert reference.content_hash != vectorized.content_hash
        assert reference.with_(backend="vectorized") == vectorized

    def test_backend_survives_json_round_trip(self):
        spec = make_spec(backend="vectorized")
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored.backend == "vectorized"
        assert restored.content_hash == spec.content_hash

    def test_empty_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            make_spec(backend="")
