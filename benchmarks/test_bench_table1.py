"""Benchmark: regenerate Table 1 (LBP-1 with the model-optimal gain)."""

import pytest

from repro.experiments import common
from repro.experiments.table1_lbp1 import run as run_table1


@pytest.mark.benchmark(group="table1")
def test_table1_lbp1_optimal_gains(benchmark, bench_once):
    result = bench_once(
        benchmark,
        run_table1,
        experiment_realisations=common.PAPER_EXPERIMENT_REALISATIONS_TABLE1,
        seed=606,
    )
    print()
    print(result.render())

    rows = {row.workload: row for row in result.rows}

    # Shape checks against the paper's Table 1:
    #  * the more loaded node is always the sender;
    #  * symmetric workloads give identical theory columns;
    #  * larger/more unbalanced workloads take longer;
    #  * the no-failure column is always the smallest;
    #  * the emulated experiment lands near the theory column;
    #  * the optimal gains are below the no-failure optimum (attenuation).
    assert rows[(200, 100)].sender == 0
    assert rows[(100, 200)].sender == 1
    # Mirrored workloads reach the same optimum (the paper reports identical
    # times for both orderings); the sender and gain differ, so the agreement
    # is to the rounding the paper uses, not bit-exact.
    assert rows[(200, 100)].theory_with_failure == pytest.approx(
        rows[(100, 200)].theory_with_failure, rel=1e-3
    )
    assert rows[(200, 50)].theory_with_failure == pytest.approx(
        rows[(50, 200)].theory_with_failure, rel=1e-3
    )
    assert (
        rows[(200, 200)].theory_with_failure
        > rows[(200, 100)].theory_with_failure
        > rows[(200, 50)].theory_with_failure
    )
    for row in result.rows:
        assert row.theory_no_failure < row.theory_with_failure
        assert row.experiment_with_failure == pytest.approx(
            row.theory_with_failure, rel=0.15
        )
        assert 0.0 < row.optimal_gain < 1.0

    # The paper's ordering of magnitudes (hundreds of seconds) is preserved.
    assert rows[(200, 200)].theory_with_failure == pytest.approx(
        common.PAPER_TABLE1[(200, 200)]["theory"], rel=0.10
    )
