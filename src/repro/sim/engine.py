"""The simulation environment: clock, event heap and run loop."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Iterable, List, Optional, Tuple, Union

from repro.sim.events import NORMAL, AllOf, AnyOf, Event, Timeout
from repro.sim.exceptions import EmptySchedule, SimulationError, StopSimulation
from repro.sim.process import Process, ProcessGenerator

#: Entries on the heap: (time, priority, sequence number, event).  The
#: sequence number breaks ties deterministically (FIFO within a time step and
#: priority class), which keeps simulations reproducible.
_HeapEntry = Tuple[float, int, int, Event]


class Environment:
    """Execution environment of a discrete-event simulation.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default ``0.0``).

    Examples
    --------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(2.5)
    ...     return "finished"
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> env.now
    2.5
    >>> p.value
    'finished'
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[_HeapEntry] = []
        self._eid = count()
        self._active_process: Optional[Process] = None

    # -- basic accessors --------------------------------------------------

    @property
    def now(self) -> float:
        """The current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    @property
    def queue_size(self) -> int:
        """Number of events currently scheduled."""
        return len(self._queue)

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that triggers after ``delay``."""
        return Timeout(self, delay, value)

    def process(
        self, generator: ProcessGenerator, name: Optional[str] = None
    ) -> Process:
        """Start a new :class:`Process` from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers once all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers once any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Put a triggered ``event`` onto the schedule after ``delay``."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    # -- execution ----------------------------------------------------------

    def step(self) -> None:
        """Process the next scheduled event.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("the simulation schedule is empty") from None

        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused():
            # An unhandled failure: re-raise so errors do not pass silently.
            value = event._value
            if isinstance(value, BaseException):
                raise value
            raise SimulationError(f"event {event!r} failed with {value!r}")

    def run(self, until: Union[None, float, int, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until no scheduled events remain;
            * a number — run until the clock reaches that time;
            * an :class:`Event` — run until that event is processed and
              return its value.

        Returns
        -------
        The value of ``until`` if it was an event, otherwise ``None``.
        """
        at: Optional[Event]
        if until is None:
            at = None
        elif isinstance(until, Event):
            at = until
            if at.callbacks is None:
                # Already processed.
                return at.value
            at.callbacks.append(_StopCallback(self))
        else:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"until={horizon!r} lies in the past (now={self._now!r})"
                )
            at = Timeout(self, horizon - self._now)
            at.callbacks.append(_StopCallback(self))

        try:
            while True:
                try:
                    self.step()
                except EmptySchedule:
                    break
        except StopSimulation as stop:
            return stop.value

        if at is not None and not at.triggered:
            raise SimulationError(
                "simulation ran out of events before the 'until' event triggered"
            )
        return None


class _StopCallback:
    """Callback that stops :meth:`Environment.run` at its target event."""

    def __init__(self, env: Environment) -> None:
        self.env = env

    def __call__(self, event: Event) -> None:
        raise StopSimulation(event._value if event._ok else None)
