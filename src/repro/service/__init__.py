"""Scenario results service: async job queue + HTTP API over the catalog.

The service turns the scenario subsystem into a long-running results
server: clients browse the registry, submit runs and sweeps as background
jobs, stream progress, and fetch finished results by spec content hash.
Cache hits — the common case for a results server — are served from
:class:`~repro.scenarios.cache.ResultCache` metadata alone, so the request
path never imports numpy/scipy; only the background worker executing a
cache miss pays for the numerical stack.

* :mod:`repro.service.http` — minimal asyncio HTTP/1.1 plumbing;
* :mod:`repro.service.jobs` — job planning, the background queue, progress
  events;
* :mod:`repro.service.app` — endpoint handlers and the ``serve()`` loop
  behind ``python -m repro serve``;
* :mod:`repro.service.client` — a small typed synchronous client
  (used by the test suite, handy for scripts).

Re-exports are lazy (PEP 562) for the same reason the rest of the package's
are: importing :mod:`repro.service` must stay free of the numerical stack.
"""

_EXPORTS = {
    "repro.service.app": ("ResultsService", "serve"),
    "repro.service.client": ("JobView", "ResultView", "ServiceClient", "ServiceError"),
    "repro.service.http": ("HTTPError", "Request", "Response", "Router"),
    "repro.service.jobs": ("Job", "JobQueue", "plan_submission"),
}

from repro._lazy import lazy_exports

__getattr__, __dir__, __all__ = lazy_exports(__name__, _EXPORTS)
