"""Tests for the completion-time CDF (eq. (5))."""

import numpy as np
import pytest

from repro.core.distribution import (
    CompletionTimeCDF,
    completion_time_cdf,
    completion_time_cdf_lbp1,
)
from repro.core.completion_time import CompletionTimeSolver
from repro.core.parameters import NodeParameters, SystemParameters, TransferDelayModel


class TestCompletionTimeCDFContainer:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CompletionTimeCDF(times=np.array([1.0, 2.0]), probabilities=np.array([0.5]),
                              workload=(1, 1))

    def test_quantile(self):
        cdf = CompletionTimeCDF(
            times=np.array([0.0, 1.0, 2.0, 3.0]),
            probabilities=np.array([0.0, 0.4, 0.8, 1.0]),
            workload=(1, 1),
        )
        assert cdf.quantile(0.5) == 2.0
        assert cdf.quantile(0.0) == 0.0
        assert cdf.quantile(1.0) == 3.0

    def test_quantile_out_of_range(self):
        cdf = CompletionTimeCDF(np.array([0.0]), np.array([0.3]), (1, 0))
        with pytest.raises(ValueError):
            cdf.quantile(1.5)
        assert cdf.quantile(0.9) == float("inf")

    def test_mean_estimate_exponential(self):
        times = np.linspace(0, 60, 4000)
        cdf = CompletionTimeCDF(times, 1.0 - np.exp(-0.5 * times), (1, 0))
        assert cdf.mean_estimate() == pytest.approx(2.0, rel=1e-3)


class TestAnalyticalCDF:
    def test_single_node_single_task_is_exponential(self):
        params = SystemParameters(
            nodes=(NodeParameters(2.0), NodeParameters(1.0)),
            delay=TransferDelayModel(0.02),
        )
        times = np.linspace(0, 5, 30)
        cdf = completion_time_cdf(params, (1, 0), times)
        assert np.allclose(cdf.probabilities, 1.0 - np.exp(-2.0 * times), atol=1e-8)

    def test_cdf_monotone_and_reaches_one(self, paper_params):
        times = np.linspace(0, 400, 120)
        cdf = completion_time_cdf_lbp1(paper_params, (25, 50), 0.35, times)
        assert np.all(np.diff(cdf.probabilities) >= -1e-12)
        assert cdf.probabilities[0] == pytest.approx(0.0, abs=1e-9)
        assert cdf.probabilities[-1] > 0.99

    def test_failure_cdf_dominated_by_no_failure_cdf(self, paper_params, no_failure_params):
        """Fig. 5's qualitative content: failures shift the CDF to the right."""
        times = np.linspace(0, 250, 80)
        with_failure = completion_time_cdf_lbp1(paper_params, (50, 0), 0.35, times)
        without_failure = completion_time_cdf_lbp1(no_failure_params, (50, 0), 0.35, times)
        assert np.all(without_failure.probabilities >= with_failure.probabilities - 1e-9)

    def test_mean_from_cdf_matches_regeneration_solver(self, paper_params):
        """E[T] = ∫ (1-F) dt must agree with the eq. (4) solver."""
        times = np.linspace(0, 700, 1200)
        cdf = completion_time_cdf_lbp1(paper_params, (20, 10), 0.4, times,
                                       sender=0, receiver=1)
        solver = CompletionTimeSolver(paper_params)
        expected = solver.lbp1((20, 10), 0.4, sender=0, receiver=1).mean
        assert cdf.mean_estimate() == pytest.approx(expected, rel=1e-2)

    @pytest.mark.parametrize("method", ["uniformization", "expm"])
    def test_backends_agree(self, paper_params, method):
        times = np.linspace(0, 150, 40)
        reference = completion_time_cdf_lbp1(
            paper_params, (15, 5), 0.4, times, method="uniformization"
        )
        other = completion_time_cdf_lbp1(paper_params, (15, 5), 0.4, times, method=method)
        assert np.allclose(reference.probabilities, other.probabilities, atol=1e-6)

    def test_default_sender_is_more_loaded_node(self, paper_params):
        times = np.linspace(0, 300, 50)
        cdf = completion_time_cdf_lbp1(paper_params, (25, 50), 0.3, times)
        assert cdf.workload == (25, 50)
        assert cdf.gain == 0.3

    def test_gain_bounds_checked(self, paper_params):
        with pytest.raises(ValueError):
            completion_time_cdf_lbp1(paper_params, (10, 10), 1.5, [1.0, 2.0])

    def test_sender_receiver_must_come_together(self, paper_params):
        with pytest.raises(ValueError):
            completion_time_cdf_lbp1(paper_params, (10, 10), 0.5, [1.0], sender=0)

    def test_zero_workload_cdf_is_one_everywhere(self, paper_params):
        cdf = completion_time_cdf(paper_params, (0, 0), [0.0, 1.0, 5.0])
        assert np.allclose(cdf.probabilities, 1.0)
