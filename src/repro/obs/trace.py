"""Lightweight span tracing: where did the wall-clock actually go?

A :class:`Tracer` collects :class:`Span` records — named intervals with a
start offset, a duration and free-form attributes, linked parent→child so
nested ``with span(...)`` blocks form a tree.  Activation rides a
:class:`contextvars.ContextVar`, so it follows ``await`` chains and
``asyncio.to_thread`` (which copies the context) but deliberately not raw
``threading.Thread``s — each service job activates its own tracer inside
the thread that executes it.

The disabled path is the common one and must cost nothing: the
module-level :func:`span` / :func:`record` helpers do a single
``ContextVar.get()`` and, when no tracer is active, return a cached no-op
context manager.  Instrumented code therefore never checks "is tracing
on?" itself.

Spans serialise to NDJSON (one JSON object per line) for the service's
``GET /v1/jobs/{id}/trace`` endpoint and the bench trace artifact, and
:meth:`Tracer.render_tree` prints the human span-tree report behind
``repro scenario run --profile``.
"""

from __future__ import annotations

import contextlib
import contextvars
import io
import json
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

#: Schema tag written into every NDJSON line so readers can evolve.
TRACE_SCHEMA_VERSION = 1

_ACTIVE: "contextvars.ContextVar[Optional[Tracer]]" = contextvars.ContextVar(
    "repro_active_tracer", default=None
)


@dataclass
class Span:
    """One completed (or in-flight) named interval."""

    span_id: int
    parent_id: Optional[int]
    name: str
    #: Seconds since the tracer's epoch (its creation time).
    start: float
    #: Seconds; ``None`` while the span is still open.
    duration: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "v": TRACE_SCHEMA_VERSION,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        return cls(
            span_id=int(payload["span"]),
            parent_id=payload.get("parent"),
            name=str(payload["name"]),
            start=float(payload["start"]),
            duration=(
                None if payload.get("duration") is None
                else float(payload["duration"])
            ),
            attrs=dict(payload.get("attrs") or {}),
        )


class Tracer:
    """Collects spans; activate with ``with tracer.activate():``."""

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self._epoch = time.monotonic()
        #: Opaque id shared by every process contributing to one trace.
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self._spans: List[Span] = []
        self._next_id = 0
        # The current parent is context-local so concurrent tasks sharing
        # one tracer nest correctly instead of adopting each other's spans.
        self._current: "contextvars.ContextVar[Optional[int]]" = (
            contextvars.ContextVar("repro_tracer_current", default=None)
        )

    # -- recording ---------------------------------------------------------

    @contextlib.contextmanager
    def span(self, name: str, /, **attrs: Any):
        """Open a nested span; closes (records duration) on exit."""
        opened = self._open(name, attrs)
        token = self._current.set(opened.span_id)
        started = time.monotonic()
        try:
            yield opened
        finally:
            opened.duration = time.monotonic() - started
            self._current.reset(token)

    def record(
        self,
        name: str,
        duration: float,
        /,
        start: Optional[float] = None,
        **attrs: Any,
    ) -> Span:
        """Log an interval that was timed externally (callbacks, events)."""
        span = self._open(name, attrs)
        if start is not None:
            span.start = float(start)
        span.duration = float(duration)
        return span

    def _open(self, name: str, attrs: Dict[str, Any]) -> Span:
        span = Span(
            span_id=self._next_id,
            parent_id=self._current.get(),
            name=name,
            start=time.monotonic() - self._epoch,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._spans.append(span)
        return span

    def now(self) -> float:
        """Seconds since this tracer's epoch — the trace's own timeline."""
        return time.monotonic() - self._epoch

    def current_span_id(self) -> Optional[int]:
        """The id of the innermost open span in this context, if any."""
        return self._current.get()

    def graft(
        self,
        name: str,
        *,
        start: float,
        duration: Optional[float],
        parent_id: Optional[int],
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Append a span with explicit timing/parentage, bypassing nesting.

        This is the stitching primitive: spans recorded by *another*
        process (already normalised onto this tracer's timeline) get fresh
        ids here so they slot into the tree without colliding with local
        spans.  The context-local "current parent" is untouched.
        """
        span = Span(
            span_id=self._next_id,
            parent_id=parent_id,
            name=name,
            start=float(start),
            duration=None if duration is None else float(duration),
            attrs=dict(attrs or {}),
        )
        self._next_id += 1
        self._spans.append(span)
        return span

    # -- activation --------------------------------------------------------

    @contextlib.contextmanager
    def activate(self):
        """Make this tracer the target of the module-level helpers."""
        token = _ACTIVE.set(self)
        try:
            yield self
        finally:
            _ACTIVE.reset(token)

    # -- access / export ---------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def to_ndjson(self) -> str:
        """One JSON object per line, in recording order."""
        out = io.StringIO()
        for span in self._spans:
            out.write(json.dumps(span.to_dict(), sort_keys=True))
            out.write("\n")
        return out.getvalue()

    @classmethod
    def from_ndjson(cls, text: str) -> "Tracer":
        tracer = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            span = Span.from_dict(json.loads(line))
            tracer._spans.append(span)
            tracer._next_id = max(tracer._next_id, span.span_id + 1)
        return tracer

    def render_tree(self, min_duration: float = 0.0) -> str:
        """The span tree with durations — the ``--profile`` report."""
        children: Dict[Optional[int], List[Span]] = {}
        for span in self._spans:
            children.setdefault(span.parent_id, []).append(span)

        lines: List[str] = []

        def emit(span: Span, depth: int) -> None:
            duration = span.duration
            if duration is not None and duration < min_duration:
                return
            shown = "(open)" if duration is None else f"{duration * 1000:9.2f} ms"
            attrs = ""
            if span.attrs:
                inner = " ".join(
                    f"{k}={v}" for k, v in sorted(span.attrs.items())
                )
                attrs = f"  [{inner}]"
            lines.append(f"{'  ' * depth}{shown}  {span.name}{attrs}")
            for child in children.get(span.span_id, ()):
                emit(child, depth + 1)

        for root in children.get(None, ()):
            emit(root, 0)
        if not lines:
            return "(no spans recorded)"
        return "\n".join(lines)

    def total_seconds(self, name: str) -> float:
        """Sum of durations over every closed span with this name."""
        return sum(
            s.duration for s in self._spans
            if s.name == name and s.duration is not None
        )


# -- module-level helpers (the near-zero disabled path) ---------------------

@contextlib.contextmanager
def _noop_span():
    yield None


def current_tracer() -> Optional[Tracer]:
    """The tracer active in this context, if any."""
    return _ACTIVE.get()


def span(name: str, /, **attrs: Any):
    """A span on the active tracer, or a no-op when tracing is off."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return _noop_span()
    return tracer.span(name, **attrs)


def record(name: str, duration: float, /, **attrs: Any) -> Optional[Span]:
    """Record an externally timed interval on the active tracer, if any."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return None
    return tracer.record(name, duration, **attrs)
