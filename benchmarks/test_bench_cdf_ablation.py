"""Ablation: transient-analysis back-ends for the completion-time CDF (eq. (5))."""

import numpy as np
import pytest

from repro.core.distribution import completion_time_cdf_lbp1
from repro.core.parameters import paper_parameters

WORKLOAD = (25, 50)
GAIN = 0.15
TIMES = np.linspace(0.0, 250.0, 126)


@pytest.fixture(scope="module")
def reference_cdf():
    return completion_time_cdf_lbp1(
        paper_parameters(), WORKLOAD, GAIN, TIMES, sender=1, receiver=0,
        method="uniformization",
    ).probabilities


def _compute(method):
    return completion_time_cdf_lbp1(
        paper_parameters(), WORKLOAD, GAIN, TIMES, sender=1, receiver=0, method=method
    ).probabilities


@pytest.mark.benchmark(group="cdf-ablation")
def test_cdf_uniformization(benchmark, reference_cdf, bench_once):
    values = bench_once(benchmark, _compute, "uniformization")
    assert np.allclose(values, reference_cdf, atol=1e-9)


@pytest.mark.benchmark(group="cdf-ablation")
def test_cdf_expm_multiply(benchmark, reference_cdf, bench_once):
    values = bench_once(benchmark, _compute, "expm")
    assert np.allclose(values, reference_cdf, atol=1e-5)


@pytest.mark.benchmark(group="cdf-ablation")
def test_cdf_ode_integration(benchmark, reference_cdf, bench_once):
    values = bench_once(benchmark, _compute, "ode")
    assert np.allclose(values, reference_cdf, atol=1e-4)
