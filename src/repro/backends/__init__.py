"""Pluggable execution backends for the Monte-Carlo estimators.

A backend decides *how* the N independent realisations of a scenario are
computed:

* :mod:`repro.backends.reference` — the event-driven simulator
  (:mod:`repro.cluster`), one realisation at a time, optionally over a
  process pool.  Full feature coverage; the semantic ground truth.
* :mod:`repro.backends.vectorized` — a NumPy batch kernel that advances
  all realisations simultaneously with array-level sampling (an exact
  batched-Gillespie sampler of the same CTMC), typically 10×+ faster on
  ``mc-scaling``-style workloads.
* :mod:`repro.backends.bench` — the benchmark harness that times the
  registered backends against each other, checks statistical parity with
  a KS test and emits machine-readable ``BENCH_results.json``.

Select a backend anywhere Monte-Carlo runs: ``MonteCarloRunner(...,
backend="vectorized")``, ``run_monte_carlo_auto(..., backend=...)``,
``ScenarioSpec(backend=...)``, or ``--backend`` on the CLI.

The registry lives in :mod:`repro.backends.base`; the names below are
re-exported lazily (PEP 562) so that enumerating backends does not import
the numerical stack.
"""

from repro.backends.base import (
    DEFAULT_BACKEND,
    BackendUnsupportedError,
    ExecutionBackend,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend,
)

#: Lazily re-exported names (module -> names), PEP 562.
_EXPORTS = {
    "repro.backends.reference": ("ReferenceBackend",),
    "repro.backends.vectorized": (
        "VectorizedBackend",
        "simulate_completion_times",
    ),
    "repro.backends.bench": (
        "BenchmarkReport",
        "run_benchmark",
        "write_benchmark_results",
    ),
}

from repro._lazy import lazy_exports

__getattr__, __dir__, __all__ = lazy_exports(
    __name__,
    _EXPORTS,
    extra_all=(
        "DEFAULT_BACKEND",
        "BackendUnsupportedError",
        "ExecutionBackend",
        "backend_names",
        "get_backend",
        "register_backend",
        "resolve_backend",
    ),
)
