"""Fleet metrics aggregation: worker registries, merged service-side.

``repro worker`` processes keep their own :class:`MetricsRegistry`
(claim latency, blocks executed, busy time).  Each worker piggybacks its
full cumulative ``snapshot()`` — tagged with a monotonically increasing
``seq`` — on the claim/result posts it already makes; the service feeds
them to a :class:`FleetAggregator`, which keeps the **latest** snapshot
per worker and exposes two read sides:

* :meth:`FleetAggregator.registry` — a fresh registry holding every
  worker's series relabelled with ``worker="<name>"``, rendered onto
  ``GET /metrics`` next to the service's own registry (via
  :func:`repro.obs.metrics.render_many`);
* :meth:`FleetAggregator.summary` — the ``GET /v1/fleet`` JSON: per-worker
  derived stats (items/s, busy fraction, mean claim latency) plus fleet
  totals, which ``repro fleet`` renders as a table.

Cumulative-snapshot-with-replace beats shipping deltas: a worker that
re-posts after a retry (the service restarted mid-ack, the HTTP call
timed out after the service processed it) simply overwrites its own slot
— ingestion is idempotent by construction, and the ``seq`` guard drops
reordered stale posts.  Nothing here double-counts.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.metrics import MetricsRegistry, histogram_quantile

#: Label injected onto every aggregated worker series.
WORKER_LABEL = "worker"


def relabel_snapshot(
    snapshot: Mapping[str, Any], **labels: str
) -> Dict[str, Any]:
    """A copy of ``snapshot`` with extra labels on every family/series."""
    out: Dict[str, Any] = {}
    for name, payload in snapshot.items():
        family = dict(payload)
        family["labelnames"] = list(payload.get("labelnames", ())) + [
            label for label in labels if label not in payload.get("labelnames", ())
        ]
        family["series"] = [
            {**entry, "labels": {**entry.get("labels", {}), **labels}}
            for entry in payload.get("series", ())
        ]
        out[name] = family
    return out


class _WorkerSlot:
    """Latest snapshot plus ingestion bookkeeping for one worker."""

    __slots__ = ("worker_id", "name", "seq", "snapshot", "first_seen", "last_seen")

    def __init__(self, worker_id: str) -> None:
        self.worker_id = worker_id
        self.name = worker_id
        self.seq = -1
        self.snapshot: Dict[str, Any] = {}
        self.first_seen: Optional[float] = None
        self.last_seen: Optional[float] = None


class FleetAggregator:
    """Latest cumulative metrics snapshot per worker, queryable fleet-wide."""

    def __init__(self, clock=time.monotonic) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self._workers: Dict[str, _WorkerSlot] = {}

    def ingest(
        self,
        worker_id: str,
        snapshot: Mapping[str, Any],
        *,
        seq: Optional[int] = None,
        name: Optional[str] = None,
    ) -> bool:
        """Absorb one worker snapshot; ``False`` means stale (dropped).

        Replace semantics: the snapshot is the worker's cumulative truth,
        so re-posting the same ``seq`` (a retried HTTP call) lands on the
        exact same state.  A ``seq`` lower than one already seen is a
        reordered duplicate and is ignored.  ``seq=None`` always replaces
        (trusting transport ordering).
        """
        if not isinstance(snapshot, Mapping):
            return False
        with self._lock:
            slot = self._workers.get(worker_id)
            if slot is None:
                slot = self._workers[worker_id] = _WorkerSlot(worker_id)
            if seq is not None:
                if seq < slot.seq:
                    return False
                slot.seq = int(seq)
            slot.snapshot = dict(snapshot)
            if name:
                slot.name = str(name)
            now = self._clock()
            if slot.first_seen is None:
                slot.first_seen = now
            slot.last_seen = now
            return True

    def forget(self, worker_id: str) -> None:
        with self._lock:
            self._workers.pop(worker_id, None)

    def worker_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._workers)

    # -- read side ---------------------------------------------------------

    def registry(self) -> MetricsRegistry:
        """A fresh registry of every worker's series, ``worker``-labelled.

        Built per scrape: snapshots are small (a handful of families per
        worker) and building fresh sidesteps any unmerge/expiry logic.
        """
        registry = MetricsRegistry()
        with self._lock:
            slots = list(self._workers.values())
        for slot in slots:
            registry.merge(relabel_snapshot(slot.snapshot, worker=slot.name))
        return registry

    def summary(self) -> Dict[str, Any]:
        """The ``GET /v1/fleet`` payload: per-worker and fleet-wide stats."""
        with self._lock:
            slots = list(self._workers.values())
            now = self._clock()
        workers = []
        for slot in sorted(slots, key=lambda s: s.name):
            snap = slot.snapshot
            busy = _value(snap, "repro_worker_busy_seconds_total")
            items_ok = _value(snap, "repro_worker_items_total", outcome="ok")
            items_failed = _value(
                snap, "repro_worker_items_total", outcome="failed"
            )
            claim_sum, claim_count = _histogram(snap, "repro_worker_claim_seconds")
            elapsed = (
                max(0.0, now - slot.first_seen)
                if slot.first_seen is not None else 0.0
            )
            workers.append({
                "id": slot.worker_id,
                "name": slot.name,
                "seq": slot.seq,
                "seconds_since_report": (
                    max(0.0, now - slot.last_seen)
                    if slot.last_seen is not None else None
                ),
                "items_ok": items_ok,
                "items_failed": items_failed,
                "blocks": _value(snap, "repro_worker_blocks_total"),
                "busy_seconds": busy,
                "busy_fraction": (
                    min(1.0, busy / elapsed) if elapsed > 0 else None
                ),
                "items_per_second": (
                    items_ok / elapsed if elapsed > 0 else None
                ),
                "claims": _value(snap, "repro_worker_claims_total", outcome="item"),
                "claims_empty": _value(
                    snap, "repro_worker_claims_total", outcome="empty"
                ),
                "claim_seconds_mean": (
                    claim_sum / claim_count if claim_count else None
                ),
                "claim_seconds_p50": _quantile(
                    (snap,), "repro_worker_claim_seconds", 0.50
                ),
                "claim_seconds_p95": _quantile(
                    (snap,), "repro_worker_claim_seconds", 0.95
                ),
            })
        fleet_claim_sum = sum(
            _histogram(s.snapshot, "repro_worker_claim_seconds")[0] for s in slots
        )
        fleet_claim_count = sum(
            _histogram(s.snapshot, "repro_worker_claim_seconds")[1] for s in slots
        )
        fractions = [
            w["busy_fraction"] for w in workers if w["busy_fraction"] is not None
        ]
        return {
            "workers": workers,
            "fleet": {
                "size": len(workers),
                "items_ok": sum(w["items_ok"] for w in workers),
                "items_failed": sum(w["items_failed"] for w in workers),
                "blocks": sum(w["blocks"] for w in workers),
                "busy_seconds": sum(w["busy_seconds"] for w in workers),
                "busy_fraction": (
                    sum(fractions) / len(fractions) if fractions else None
                ),
                "items_per_second": sum(
                    w["items_per_second"] or 0.0 for w in workers
                ),
                "claim_seconds_mean": (
                    fleet_claim_sum / fleet_claim_count
                    if fleet_claim_count else None
                ),
                "claim_seconds_p50": _quantile(
                    [s.snapshot for s in slots],
                    "repro_worker_claim_seconds", 0.50,
                ),
                "claim_seconds_p95": _quantile(
                    [s.snapshot for s in slots],
                    "repro_worker_claim_seconds", 0.95,
                ),
            },
        }


def _value(snapshot: Mapping[str, Any], family: str, **labels: str) -> float:
    """Sum of matching counter/gauge series values in a snapshot (0.0 if absent)."""
    payload = snapshot.get(family)
    if not payload:
        return 0.0
    total = 0.0
    for entry in payload.get("series", ()):
        entry_labels = entry.get("labels", {})
        if all(entry_labels.get(k) == v for k, v in labels.items()):
            total += float(entry.get("value", 0.0))
    return total


def _histogram(snapshot: Mapping[str, Any], family: str, **labels: str):
    """(sum, count) over matching histogram series ((0.0, 0) if absent)."""
    payload = snapshot.get(family)
    if not payload:
        return 0.0, 0
    total, count = 0.0, 0
    for entry in payload.get("series", ()):
        entry_labels = entry.get("labels", {})
        if all(entry_labels.get(k) == v for k, v in labels.items()):
            total += float(entry.get("sum", 0.0))
            count += int(entry.get("count", 0))
    return total, count


def _histogram_buckets(
    snapshots, family: str, **labels: str
):
    """(buckets, summed per-bucket counts) across snapshots, or ``None``.

    Workers share one code path and therefore one bucket layout, so
    summing the per-bucket counts across snapshots gives the fleet-wide
    distribution; a snapshot with a different layout is skipped rather
    than mis-summed.
    """
    buckets = None
    counts: Optional[List[int]] = None
    for snapshot in snapshots:
        payload = snapshot.get(family)
        if not payload:
            continue
        layout = payload.get("buckets")
        if layout is None:
            continue
        if buckets is None:
            buckets = list(layout)
            counts = [0] * len(buckets)
        elif list(layout) != buckets:
            continue
        for entry in payload.get("series", ()):
            entry_labels = entry.get("labels", {})
            if all(entry_labels.get(k) == v for k, v in labels.items()):
                for i, c in enumerate(entry.get("counts", ())):
                    counts[i] += int(c)
    if buckets is None or counts is None:
        return None
    return buckets, counts


def _quantile(snapshots, family: str, q: float, **labels: str) -> Optional[float]:
    """A quantile of a histogram family summed across snapshots."""
    merged = _histogram_buckets(snapshots, family, **labels)
    if merged is None:
        return None
    buckets, counts = merged
    return histogram_quantile(buckets, counts, q)


def render_fleet_table(summary: Mapping[str, Any]) -> str:
    """The ``repro fleet`` table (plain text, stdlib-only)."""
    headers = (
        "worker", "items", "failed", "blocks", "busy",
        "busy%", "items/s", "claim ms", "p50 ms", "p95 ms", "last seen",
    )
    rows: List[List[str]] = []
    for worker in summary.get("workers", ()):
        rows.append([
            str(worker.get("name", "?")),
            _fmt_count(worker.get("items_ok")),
            _fmt_count(worker.get("items_failed")),
            _fmt_count(worker.get("blocks")),
            _fmt_seconds(worker.get("busy_seconds")),
            _fmt_fraction(worker.get("busy_fraction")),
            _fmt_rate(worker.get("items_per_second")),
            _fmt_millis(worker.get("claim_seconds_mean")),
            _fmt_millis(worker.get("claim_seconds_p50")),
            _fmt_millis(worker.get("claim_seconds_p95")),
            _fmt_ago(worker.get("seconds_since_report")),
        ])
    fleet = summary.get("fleet", {})
    rows.append([
        f"fleet ({fleet.get('size', 0)})",
        _fmt_count(fleet.get("items_ok")),
        _fmt_count(fleet.get("items_failed")),
        _fmt_count(fleet.get("blocks")),
        _fmt_seconds(fleet.get("busy_seconds")),
        _fmt_fraction(fleet.get("busy_fraction")),
        _fmt_rate(fleet.get("items_per_second")),
        _fmt_millis(fleet.get("claim_seconds_mean")),
        _fmt_millis(fleet.get("claim_seconds_p50")),
        _fmt_millis(fleet.get("claim_seconds_p95")),
        "",
    ])
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def _fmt_count(value) -> str:
    return "0" if not value else str(int(value))


def _fmt_seconds(value) -> str:
    return "-" if value is None else f"{value:.1f}s"


def _fmt_fraction(value) -> str:
    return "-" if value is None else f"{value * 100:.0f}%"


def _fmt_rate(value) -> str:
    return "-" if value is None else f"{value:.2f}"


def _fmt_millis(value) -> str:
    return "-" if value is None else f"{value * 1000:.1f}"


def _fmt_ago(value) -> str:
    return "-" if value is None else f"{value:.0f}s ago"
