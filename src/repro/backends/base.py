"""The :class:`ExecutionBackend` protocol and the backend registry.

An execution backend is a strategy for producing a Monte-Carlo estimate of
the overall completion time: *how* the N independent realisations of a
``(params, policy, workload)`` triple are computed.  Two implementations
ship with the package:

* ``"reference"`` (:mod:`repro.backends.reference`) — the event-driven
  simulator of :mod:`repro.cluster`, one realisation at a time (optionally
  fanned out over a process pool).  It supports every feature of the model
  (traces, arbitrary policies, deterministic delays) and is the semantic
  ground truth.
* ``"vectorized"`` (:mod:`repro.backends.vectorized`) — a NumPy batch
  kernel that advances *all* realisations simultaneously with array-level
  sampling.  It is an exact sampler of the same continuous-time Markov
  chain, typically one to two orders of magnitude faster, but supports only
  the CTMC-expressible subset of the model (it raises
  :class:`BackendUnsupportedError` otherwise).

Backends register themselves by name; everything that runs Monte-Carlo —
:class:`~repro.montecarlo.runner.MonteCarloRunner`,
:func:`~repro.montecarlo.parallel.run_monte_carlo_auto`, the scenario
orchestrator and the CLI — accepts a backend name and resolves it here.
This module deliberately imports none of the heavy numerical stack, so the
CLI can enumerate backend names without paying for scipy.
"""

from __future__ import annotations

import importlib
from abc import ABC, abstractmethod
from concurrent.futures import Executor
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.workload import Workload
    from repro.core.parameters import SystemParameters
    from repro.core.policies.base import LoadBalancingPolicy
    from repro.montecarlo.runner import MonteCarloEstimate
    from repro.sim.rng import SeedLike

#: The backend used when none is requested — the event-driven simulator.
DEFAULT_BACKEND = "reference"

#: Built-in backends, imported lazily on first lookup.  Each module
#: registers its backend instance at import time.
_BUILTIN_MODULES: Dict[str, str] = {
    "reference": "repro.backends.reference",
    "vectorized": "repro.backends.vectorized",
    "auto": "repro.backends.auto",
}

_REGISTRY: Dict[str, "ExecutionBackend"] = {}


class BackendUnsupportedError(ValueError):
    """A backend cannot execute the requested scenario configuration.

    Raised *before* any simulation runs, so callers can fall back to the
    reference backend (or surface a clear message) instead of silently
    producing wrong numbers.
    """


class ExecutionBackend(ABC):
    """Strategy interface: produce a Monte-Carlo estimate for one scenario.

    A backend is stateless and shareable; the registry holds one instance
    per name.  Implementations must be reproducible: the same ``seed``
    always yields the same estimate (though different backends draw
    different streams and therefore different — statistically
    indistinguishable — samples).
    """

    #: Registry key and the name shown in reports and cache metadata.
    name: str = "backend"

    @abstractmethod
    def run_batch(
        self,
        params: "SystemParameters",
        policy: "LoadBalancingPolicy",
        workload: Union["Workload", Sequence[int]],
        num_realisations: int,
        seed: "SeedLike" = None,
        horizon: Optional[float] = None,
        confidence_level: float = 0.95,
        workers: Optional[int] = None,
        executor: Optional[Executor] = None,
        **system_kwargs,
    ) -> "MonteCarloEstimate":
        """Run ``num_realisations`` realisations and aggregate them.

        ``workers``/``executor`` size an optional process pool; backends
        that do not parallelise that way (the vectorized kernel is a single
        array program) accept and ignore them.
        """

    def ensure_supported(
        self,
        params: "SystemParameters",
        policy: "LoadBalancingPolicy",
        workload: Union["Workload", Sequence[int]],
        **system_kwargs,
    ) -> None:
        """Raise :class:`BackendUnsupportedError` for unsupported configs.

        The default accepts everything; restricted backends override this
        so callers can probe support without running anything.
        """

    def supports(
        self,
        params: "SystemParameters",
        policy: "LoadBalancingPolicy",
        workload: Union["Workload", Sequence[int]],
        **system_kwargs,
    ) -> bool:
        """Whether this backend can execute the given configuration."""
        try:
            self.ensure_supported(params, policy, workload, **system_kwargs)
        except BackendUnsupportedError:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} {self.name!r}>"


def register_backend(backend: ExecutionBackend) -> ExecutionBackend:
    """Add (or replace) a backend under its ``name``; returns it unchanged."""
    if not backend.name or not isinstance(backend.name, str):
        raise ValueError(f"backend {backend!r} needs a non-empty string name")
    _REGISTRY[backend.name] = backend
    return backend


def backend_names() -> Tuple[str, ...]:
    """All known backend names (built-in and registered), sorted."""
    return tuple(sorted(set(_REGISTRY) | set(_BUILTIN_MODULES)))


def get_backend(name: str) -> ExecutionBackend:
    """The backend registered under ``name`` (imports built-ins on demand)."""
    if name not in _REGISTRY and name in _BUILTIN_MODULES:
        importlib.import_module(_BUILTIN_MODULES[name])
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {name!r}; known backends: "
            f"{', '.join(backend_names())}"
        ) from None


def resolve_backend(
    backend: Union[None, str, ExecutionBackend]
) -> ExecutionBackend:
    """Coerce a backend argument (name, instance or ``None``) to an instance."""
    if backend is None:
        return get_backend(DEFAULT_BACKEND)
    if isinstance(backend, ExecutionBackend):
        return backend
    if isinstance(backend, str):
        return get_backend(backend)
    raise TypeError(
        f"backend must be a name, an ExecutionBackend or None, got {backend!r}"
    )
