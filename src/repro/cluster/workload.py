"""Initial workloads: how many tasks each node holds at ``t = 0``.

The paper's experiments always start from a fixed vector
``(m_1, m_2)`` of task counts (e.g. ``(100, 60)`` for Fig. 3, the five
workloads of Tables 1 and 2).  :class:`Workload` materialises such a vector
into concrete :class:`~repro.cluster.task.Task` objects, optionally with
randomised task sizes mimicking the randomised arithmetic precision of the
test-bed application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.task import Task
from repro.core.parameters import validate_workload
from repro.sim.distributions import Distribution, Deterministic


@dataclass(frozen=True)
class Workload:
    """An immutable initial allocation of tasks to nodes."""

    counts: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "counts", validate_workload(self.counts))

    @property
    def num_nodes(self) -> int:
        """Number of nodes the workload spans."""
        return len(self.counts)

    @property
    def total(self) -> int:
        """Total number of tasks in the system."""
        return int(sum(self.counts))

    def count(self, node: int) -> int:
        """Initial number of tasks at ``node``."""
        return self.counts[node]

    def swapped(self) -> "Workload":
        """The workload with the node order reversed (used in symmetry tests)."""
        return Workload(tuple(reversed(self.counts)))

    def materialise(
        self,
        rng: Optional[np.random.Generator] = None,
        size_distribution: Optional[Distribution] = None,
    ) -> Dict[int, List[Task]]:
        """Create concrete :class:`Task` objects for every node.

        Parameters
        ----------
        rng:
            Generator used to draw task sizes (only needed when
            ``size_distribution`` is stochastic).
        size_distribution:
            Distribution of the abstract task size; defaults to a unit
            deterministic size.
        """
        dist = size_distribution or Deterministic(1.0)
        if rng is None:
            rng = np.random.default_rng(0)
        tasks: Dict[int, List[Task]] = {}
        task_id = 0
        for node, count in enumerate(self.counts):
            node_tasks = []
            for _ in range(count):
                node_tasks.append(
                    Task(task_id=task_id, origin=node, size=float(dist.sample(rng)))
                )
                task_id += 1
            tasks[node] = node_tasks
        return tasks

    def __iter__(self):
        return iter(self.counts)

    def __len__(self) -> int:
        return len(self.counts)

    def __getitem__(self, node: int) -> int:
        return self.counts[node]


def generate_workload(
    counts: Sequence[int],
    rng: Optional[np.random.Generator] = None,
    size_distribution: Optional[Distribution] = None,
) -> Tuple[Workload, Dict[int, List[Task]]]:
    """Convenience helper: build a :class:`Workload` and materialise it."""
    workload = Workload(tuple(counts))
    return workload, workload.materialise(rng=rng, size_distribution=size_distribution)


#: The workload highlighted in the paper's Fig. 3/4 and Table 3 discussion.
PAPER_PRIMARY_WORKLOAD = Workload((100, 60))

#: The five workloads of Tables 1 and 2.
PAPER_TABLE_WORKLOADS = (
    Workload((200, 200)),
    Workload((200, 100)),
    Workload((100, 200)),
    Workload((200, 50)),
    Workload((50, 200)),
)

#: The two workloads of the CDF figure (Fig. 5).
PAPER_CDF_WORKLOADS = (Workload((50, 0)), Workload((25, 50)))
