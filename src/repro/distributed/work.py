"""Executing one shard work item — the code both pool slots and remote
workers run.

A *work item* is a self-contained document describing one shard's worth of
seed blocks.  Two flavours exist, sharing one schema:

* **spec items** (:func:`make_work_item`) carry the effective
  :class:`~repro.scenarios.spec.ScenarioSpec` (system, workload, policy,
  seed, backend) as pure JSON — the form that travels to remote
  ``repro worker`` processes over HTTP;
* **ad-hoc items** (:func:`make_adhoc_item`) carry live Python objects
  (parameters, a policy instance, ``system_kwargs``) for runs the spec
  schema cannot express.  They move by reference (inline executor) or by
  pickle (process pools); before crossing a JSON transport the engine
  folds them through :func:`adhoc_wire_payload`, which renders the
  parameters as plain dicts and the policy as a registered-builder
  reference (:mod:`repro.distributed.policy_registry`) — no pickle ever
  touches the wire.  Payloads that cannot be rendered (a live backend
  instance, an unregistered custom policy, non-JSON ``system_kwargs``)
  still refuse JSON transports.

Each block runs through the requested
:class:`~repro.backends.base.ExecutionBackend` with the block's own seed
stream (:func:`repro.distributed.plan.block_seed`), then reduces to a JSON
payload: the completion-time sample plus a mergeable
:class:`~repro.montecarlo.statistics.RunningStatistics` state.  The
serialization helpers :func:`policy_spec_of` and :func:`int_seed` — which
fold programmatically-built policies and spawned seeds back into spec
fields — live here too.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, List, Optional

from repro.distributed.plan import SeedBlock, block_seed
from repro.obs import propagate, trace

#: Work-item schema version; workers refuse items they do not understand.
#: ``trace_ctx`` (and the ``trace`` subtree in results) are *optional*
#: additions within version 1 — untraced parents omit them, old workers
#: ignore them.
WORK_ITEM_VERSION = 1


def warm_block_runtime() -> float:
    """Pre-import everything a block execution touches; returns the seconds
    it took.

    The heavy imports behind :func:`run_block` — numpy, the spec machinery,
    the statistics accumulator and the execution backends — dominate a cold
    process's first work item.  Pool initializers
    (:class:`~repro.distributed.executors.ProcessShardExecutor`) and
    ``repro worker`` start-up call this once, so every slot is warm before
    the first claim and each dispatch pays compute, not imports.
    """
    started = perf_counter()
    import numpy  # noqa: F401 - imported for the side effect

    from repro.backends.base import backend_names, get_backend
    from repro.montecarlo.statistics import RunningStatistics  # noqa: F401
    from repro.scenarios.spec import ScenarioSpec  # noqa: F401

    for name in backend_names():
        try:
            get_backend(name)
        except Exception:  # noqa: BLE001 - warm-up must never be fatal
            continue
    return perf_counter() - started


def policy_spec_of(policy: Any) -> "PolicySpec":
    """Describe a built policy instance as a serializable ``PolicySpec``.

    The inverse of :meth:`PolicySpec.build` for the built-in policies; it
    lets runners that construct policies programmatically (e.g. the
    delay-crossover duel, which pins analytically-optimised gains) ship
    them to executors and remote workers inside a work item.
    """
    from repro.core.policies.baselines import (
        NoBalancing,
        ProportionalOneShot,
        SendAllOnFailure,
    )
    from repro.core.policies.lbp1 import LBP1
    from repro.core.policies.lbp2 import LBP2
    from repro.scenarios.spec import PolicySpec

    if isinstance(policy, LBP1):
        return PolicySpec(
            kind="lbp1",
            gain=float(policy.gain),
            sender=policy.sender,
            receiver=policy.receiver,
        )
    if isinstance(policy, LBP2):
        return PolicySpec(
            kind="lbp2", gain=float(policy.gain), compensate=policy.compensate
        )
    if isinstance(policy, NoBalancing):
        return PolicySpec(kind="none")
    if isinstance(policy, ProportionalOneShot):
        return PolicySpec(kind="proportional")
    if isinstance(policy, SendAllOnFailure):
        return PolicySpec(kind="send_all")
    raise ValueError(
        f"cannot serialize policy {policy!r} into a PolicySpec; sharded "
        "execution only ships the built-in policy kinds"
    )


def int_seed(seed: Any) -> int:
    """Collapse any seed-like value to a deterministic non-negative int.

    Sharded work items travel as JSON, so their master seed must be an
    integer; a :class:`numpy.random.SeedSequence` (e.g. a spawned child) is
    reduced through its own generated state, which is stable across
    processes and platforms.
    """
    import numpy as np

    if seed is None:
        return 0
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    if isinstance(seed, np.random.SeedSequence):
        return int(seed.generate_state(1, np.uint64)[0] >> 1)
    raise TypeError(f"cannot reduce seed {seed!r} to an integer")


def make_work_item(
    item_id: str,
    task_id: str,
    shard_index: int,
    spec_dict: Dict[str, Any],
    blocks: List[SeedBlock],
    confidence_level: float = 0.95,
) -> Dict[str, Any]:
    """Assemble the JSON work item for one shard."""
    return {
        "version": WORK_ITEM_VERSION,
        "id": item_id,
        "task": task_id,
        "shard": shard_index,
        "spec": spec_dict,
        "blocks": [list(block.to_item()) for block in blocks],
        "confidence_level": confidence_level,
    }


def make_adhoc_item(
    item_id: str,
    task_id: str,
    shard_index: int,
    payload: Dict[str, Any],
    blocks: List[SeedBlock],
    confidence_level: float = 0.95,
) -> Dict[str, Any]:
    """Assemble a work item around live Python objects (no JSON transport).

    ``payload`` carries ``params``, ``policy``, ``workload``, ``seed``
    (the master seed), ``backend``, ``horizon`` and ``system_kwargs`` —
    everything :meth:`ExecutionBackend.run_batch` needs.  The item is
    picklable whenever its contents are, which covers the inline and
    process-pool executors; for JSON transports the engine first renders
    the payload through :func:`adhoc_wire_payload` (and refuses the
    transport when that is impossible).
    """
    return {
        "version": WORK_ITEM_VERSION,
        "id": item_id,
        "task": task_id,
        "shard": shard_index,
        "adhoc": payload,
        "blocks": [list(block.to_item()) for block in blocks],
        "confidence_level": confidence_level,
    }


def _seed_to_wire(seed: Any) -> Optional[int]:
    """Collapse ``seed`` to a wire-safe int *iff* it preserves the stream.

    :func:`~repro.distributed.plan.block_seed` derives block streams from
    ``(entropy, spawn_key)``; an integer ``e`` and ``SeedSequence(e)`` are
    interchangeable, so a root-level sequence (empty spawn key, integer
    entropy) ships as its entropy.  A spawned/child sequence would change
    streams if collapsed — return ``None`` and keep the run off JSON
    transports rather than silently alter its results.
    """
    import numpy as np

    if seed is None:
        return 0
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    if isinstance(seed, np.random.SeedSequence):
        if not tuple(seed.spawn_key) and isinstance(seed.entropy, int):
            return int(seed.entropy)
    return None


def adhoc_wire_payload(payload: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """A pure-JSON rendering of an ad-hoc payload, or ``None``.

    Renders ``params`` via :meth:`SystemParameters.to_dict` (which, unlike
    ``SystemSpec``, keeps pairwise delay overrides) and ``policy`` as a
    registered-builder reference.  ``None`` means the payload genuinely
    cannot travel: a live backend instance, an unregistered custom policy,
    non-JSON ``system_kwargs``, or a spawned master ``SeedSequence`` whose
    stream an integer cannot reproduce.
    """
    import json as _json

    from repro.core.parameters import SystemParameters
    from repro.distributed.policy_registry import policy_wire_ref

    params = payload.get("params")
    if not isinstance(params, SystemParameters):
        return None
    backend = payload.get("backend")
    if backend is not None and not isinstance(backend, str):
        return None
    policy_ref = policy_wire_ref(payload.get("policy"))
    if policy_ref is None:
        return None
    seed = _seed_to_wire(payload.get("seed"))
    if seed is None:
        return None
    system_kwargs = dict(payload.get("system_kwargs") or {})
    try:
        _json.dumps(system_kwargs)
    except (TypeError, ValueError):
        return None
    horizon = payload.get("horizon")
    return {
        "params": params.to_dict(),
        "policy": policy_ref,
        "workload": [int(m) for m in payload["workload"]],
        "seed": seed,
        "backend": backend,
        "horizon": None if horizon is None else float(horizon),
        "system_kwargs": system_kwargs,
    }


# One-slot memo for the per-block spec rebuild.  A shard's blocks all
# carry the same spec dict, so re-parsing it (ScenarioSpec.from_dict,
# parameter materialisation, policy gain resolution, backend lookup) per
# block is pure deserialize tax; keying on the canonical spec JSON makes
# reuse exact.  One slot suffices — workers and pool slots interleave at
# item granularity, and a fresh spec simply repopulates it.
_SPEC_MEMO: Dict[str, Any] = {}


def _spec_runtime(spec_dict: Dict[str, Any]):
    """(spec, params, policy, backend) for a spec dict, memoized."""
    import json as _json

    from repro.backends.base import resolve_backend
    from repro.scenarios.spec import PolicySpec, ScenarioSpec

    key = _json.dumps(spec_dict, sort_keys=True, default=str)
    if _SPEC_MEMO.get("key") != key:
        spec = ScenarioSpec.from_dict(dict(spec_dict))
        params = spec.system.to_parameters()
        policy = (spec.policy or PolicySpec()).build(params, spec.workload)
        backend = resolve_backend(spec.backend)
        _SPEC_MEMO.update(
            key=key, runtime=(spec, params, policy, backend)
        )
    return _SPEC_MEMO["runtime"]


def run_block(
    spec_dict: Dict[str, Any], block: SeedBlock
) -> Dict[str, Any]:
    """Execute one seed block and reduce it to a JSON-safe payload."""
    from repro.montecarlo.statistics import RunningStatistics

    with trace.span("worker.deserialize", block=block.index):
        spec, params, policy, backend = _spec_runtime(spec_dict)
    started = perf_counter()
    with trace.span(
        "worker.compute",
        block=block.index,
        realisations=block.num_realisations,
    ):
        estimate = backend.run_batch(
            params,
            policy,
            spec.workload,
            block.num_realisations,
            seed=block_seed(spec.seed, block.index),
        )
    compute_seconds = perf_counter() - started
    times = [float(t) for t in estimate.completion_times]
    return {
        "index": block.index,
        "start": block.start,
        "stop": block.stop,
        "policy": estimate.policy_name,
        "completion_times": times,
        "stats": RunningStatistics.from_values(times).to_dict(),
        # Pure backend compute time, measured where the block actually ran
        # (possibly a pool subprocess or a remote worker).  Extra key on
        # BLOCK_FORMAT_VERSION 1 payloads — cached blocks written before
        # this field simply lack it.
        "wall_seconds": compute_seconds,
    }


def run_adhoc_block(payload: Dict[str, Any], block: SeedBlock) -> Dict[str, Any]:
    """Execute one seed block of an ad-hoc item (same reduction as spec items).

    The master seed in ``payload`` may be a live ``SeedSequence``;
    :func:`~repro.distributed.plan.block_seed` extends its spawn key, so an
    integer seed and ``SeedSequence(seed)`` draw identical block streams —
    which is what keeps ad-hoc and spec-described runs of the same
    configuration bit-identical.

    Payloads arriving over a JSON transport (see :func:`adhoc_wire_payload`)
    carry dict-shaped ``params``/``policy``; they are rehydrated here, on
    the worker, inside the ``worker.deserialize`` span.
    """
    from repro.backends.base import resolve_backend

    from repro.montecarlo.statistics import RunningStatistics

    with trace.span("worker.deserialize", block=block.index):
        backend = resolve_backend(payload.get("backend"))
        params = payload["params"]
        policy = payload["policy"]
        workload = tuple(payload["workload"])
        if isinstance(params, dict):
            from repro.core.parameters import SystemParameters

            params = SystemParameters.from_dict(params)
        if isinstance(policy, dict):
            from repro.distributed.policy_registry import resolve_policy_ref

            policy = resolve_policy_ref(policy, params, workload)
    started = perf_counter()
    with trace.span(
        "worker.compute",
        block=block.index,
        realisations=block.num_realisations,
    ):
        estimate = backend.run_batch(
            params,
            policy,
            workload,
            block.num_realisations,
            seed=block_seed(payload.get("seed"), block.index),
            horizon=payload.get("horizon"),
            **payload.get("system_kwargs", {}),
        )
    compute_seconds = perf_counter() - started
    times = [float(t) for t in estimate.completion_times]
    return {
        "index": block.index,
        "start": block.start,
        "stop": block.stop,
        "policy": estimate.policy_name,
        "completion_times": times,
        "stats": RunningStatistics.from_values(times).to_dict(),
        "wall_seconds": compute_seconds,
    }


def execute_work_item(
    item: Dict[str, Any], *, worker: Optional[str] = None
) -> Dict[str, Any]:
    """Run every block of a work item; the worker/pool entry point.

    When the item carries a ``trace_ctx`` (see
    :mod:`repro.obs.propagate`), a child tracer records a ``worker.item``
    span (plus the per-block ``worker.deserialize``/``worker.compute``
    spans) and the serialised subtree travels home under the result's
    ``trace`` key for the scheduler to stitch.
    """
    version = item.get("version")
    if version != WORK_ITEM_VERSION:
        raise ValueError(
            f"unsupported work item version {version!r} "
            f"(this worker speaks version {WORK_ITEM_VERSION})"
        )
    started = perf_counter()
    with propagate.child_capture(item.get("trace_ctx")) as child:
        with trace.span(
            "worker.item",
            shard=int(item["shard"]),
            blocks=len(item["blocks"]),
        ):
            if "adhoc" in item:
                blocks = [
                    run_adhoc_block(item["adhoc"], SeedBlock.from_item(entry))
                    for entry in item["blocks"]
                ]
            else:
                blocks = [
                    run_block(item["spec"], SeedBlock.from_item(entry))
                    for entry in item["blocks"]
                ]
        result = {
            "id": item["id"],
            "task": item["task"],
            "shard": int(item["shard"]),
            "blocks": blocks,
            "wall_seconds": perf_counter() - started,
        }
        if child is not None:
            # The child tracer's epoch is its construction time, i.e. the
            # moment this process picked the item up — so recv is 0.0 on
            # the child timeline.
            result["trace"] = propagate.export_subtree(
                child, recv_at=0.0, done_at=child.now(), worker=worker
            )
    return result


def shard_outcome_error(error: BaseException) -> str:
    """Uniform error rendering for failed shard executions."""
    return f"{type(error).__name__}: {error}"


def worker_name(default: Optional[str] = None) -> str:
    """A human-traceable default worker name (host + pid)."""
    import os
    import socket

    if default:
        return default
    return f"{socket.gethostname()}-{os.getpid()}"
