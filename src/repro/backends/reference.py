"""The reference backend: the event-driven simulator, unchanged semantics.

This backend wraps the per-block execution primitive —
:class:`~repro.montecarlo.runner.MonteCarloRunner` — behind the
:class:`~repro.backends.base.ExecutionBackend` protocol.  It supports the
full feature set of the model (every policy, every delay law, traces,
per-realisation results) and is the ground truth the vectorized kernel is
validated against.

Parallelism is no longer this backend's concern: the unified engine
(:mod:`repro.montecarlo.engine`) plans ensembles into seed blocks and
fans the blocks out over executors; each ``run_batch`` call executes one
block in-process.  The ``workers``/``executor`` protocol arguments are
accepted for interface parity and ignored, exactly like the vectorized
kernel ignores them.
"""

from __future__ import annotations

from concurrent.futures import Executor
from typing import Optional, Sequence, Union

from repro.backends.base import ExecutionBackend, register_backend
from repro.cluster.workload import Workload
from repro.core.parameters import SystemParameters
from repro.core.policies.base import LoadBalancingPolicy
from repro.montecarlo.runner import MonteCarloEstimate, MonteCarloRunner
from repro.sim.rng import SeedLike


class ReferenceBackend(ExecutionBackend):
    """Event-driven execution, one realisation at a time, in-process."""

    name = "reference"

    def run_batch(
        self,
        params: SystemParameters,
        policy: LoadBalancingPolicy,
        workload: Union[Workload, Sequence[int]],
        num_realisations: int,
        seed: SeedLike = None,
        horizon: Optional[float] = None,
        confidence_level: float = 0.95,
        workers: Optional[int] = None,
        executor: Optional[Executor] = None,
        **system_kwargs,
    ) -> MonteCarloEstimate:
        # Pool arguments are the engine's job now (it fans whole blocks out
        # to executor slots); a block itself always runs in-process.
        del workers, executor
        runner = MonteCarloRunner(
            params, policy, workload, seed=seed, **system_kwargs
        )
        return runner.run(
            num_realisations,
            horizon=horizon,
            confidence_level=confidence_level,
        )


register_backend(ReferenceBackend())
