"""Vectorized batch Monte-Carlo: all realisations advance simultaneously.

The model of the paper — exponential service, exponential up/down
alternation, exponential (or Erlang) batch-transfer delays, unit tasks —
is a continuous-time Markov chain, so N independent realisations can be
sampled *exactly* with a batched Gillespie (stochastic simulation)
algorithm: one NumPy step advances every still-running realisation by one
event, drawing the holding time and the event category from array-level
exponential/uniform samples instead of walking a per-event Python loop.

Per realisation the state is only a handful of small integers (queue
lengths, node up/down flags, in-flight transfer batches), so the whole
batch lives in ``[N, …]`` arrays and a step costs a few dozen vector
operations regardless of N.  The per-event Python overhead of the
reference simulator — heap scheduling, generator resumption, callbacks —
is amortised over the entire batch, which is where the order-of-magnitude
throughput gain on ``mc-scaling``-style workloads comes from.

Semantics are matched to :mod:`repro.cluster` event by event:

* a node serves one task at a time at rate ``λ_d`` while up and non-empty;
  preemption is memoryless (``resume`` and ``restart`` coincide in law);
* failures/recoveries alternate at rates ``λ_f``/``λ_r``;
* at a failure instant the task in service stays with the node (its
  context is held by the backup system), so compensation transfers can
  draw on at most ``queue - 1`` tasks — the same capping the
  :class:`~repro.cluster.backup.BackupAgent` applies;
* each in-flight batch of ``L`` tasks is an independent exponential clock
  with mean ``overhead + d·L`` (or an ``L``-stage Erlang chain);
* the completion time is the instant of the last task completion.

Configurations outside the CTMC (deterministic delays, Erlang delays with
a fixed overhead, traced runs, policies with bespoke failure/recovery
reactions) raise :class:`BackendUnsupportedError` up front; the reference
backend remains the fallback for those.
"""

from __future__ import annotations

from concurrent.futures import Executor
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backends.base import (
    BackendUnsupportedError,
    ExecutionBackend,
    register_backend,
)
from repro.cluster.system import IncompleteSimulationError
from repro.cluster.workload import Workload
from repro.core.parameters import (
    SystemParameters,
    TransferDelayModel,
    validate_workload,
)
from repro.core.policies.base import LoadBalancingPolicy
from repro.core.policies.baselines import SendAllOnFailure
from repro.core.policies.lbp2 import LBP2, compensation_transfer_sizes
from repro.montecarlo.runner import MonteCarloEstimate
from repro.sim.rng import SeedLike

#: ``system_kwargs`` the kernel understands; anything else is rejected.
_KNOWN_SYSTEM_KWARGS = frozenset(
    {"preemption", "record_trace", "size_distribution"}
)


def _check_delay_model(model: TransferDelayModel) -> None:
    """Reject delay laws the CTMC kernel cannot express."""
    if model.kind == "deterministic":
        raise BackendUnsupportedError(
            "the vectorized backend cannot sample deterministic transfer "
            "delays (not memoryless); use backend='reference'"
        )
    if model.kind == "erlang" and model.fixed_overhead > 0:
        raise BackendUnsupportedError(
            "the vectorized backend supports Erlang transfer delays only "
            "without a fixed overhead; use backend='reference'"
        )


def _slot_timing(
    model: TransferDelayModel, num_tasks: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-batch ``(stages, stage_rate)`` for batches of ``num_tasks`` tasks.

    An exponential batch delay is one stage at rate ``1 / (overhead + d·L)``;
    an Erlang delay is ``L`` stages at the per-task rate ``1 / d``.  A zero
    mean (instantaneous link) is signalled with ``stage_rate = inf``.
    """
    num_tasks = np.asarray(num_tasks, dtype=np.int64)
    if model.kind == "erlang":
        stages = num_tasks.copy()
        if model.mean_delay_per_task == 0.0:
            rate = np.full(num_tasks.shape, np.inf)
        else:
            rate = np.full(num_tasks.shape, 1.0 / model.mean_delay_per_task)
        return stages, rate
    # "exponential": a single stage for the whole batch.
    mean = model.fixed_overhead + model.mean_delay_per_task * num_tasks
    rate = np.where(mean > 0.0, 1.0 / np.where(mean > 0.0, mean, 1.0), np.inf)
    return np.ones(num_tasks.shape, dtype=np.int64), rate


class _BatchKernel:
    """State arrays and the step loop of one vectorized batch run."""

    def __init__(
        self,
        params: SystemParameters,
        policy: LoadBalancingPolicy,
        counts: Tuple[int, ...],
        num_realisations: int,
        rng: np.random.Generator,
        horizon: Optional[float],
    ) -> None:
        self.params = params
        self.policy = policy
        self.rng = rng
        self.horizon = horizon
        self.n = params.num_nodes
        self.N = num_realisations

        n, N = self.n, self.N
        self.service_rates = np.asarray(params.service_rates, dtype=float)
        self.failure_rates = np.asarray(params.failure_rates, dtype=float)
        self.recovery_rates = np.asarray(params.recovery_rates, dtype=float)

        # The initial policy action is a pure function of the (deterministic)
        # workload, so it is computed once via the real policy object and
        # applied identically to every realisation.
        remaining = list(counts)
        initial_batches: List[Tuple[int, int, int]] = []
        for transfer in policy.initial_transfers(counts, params):
            num = min(transfer.num_tasks, remaining[transfer.source])
            if num <= 0:
                continue
            remaining[transfer.source] -= num
            initial_batches.append((transfer.source, transfer.destination, num))

        self.queue = np.tile(np.asarray(remaining, dtype=np.int64), (N, 1))
        self.up = np.tile(
            np.asarray([node.initially_up for node in params.nodes], dtype=bool),
            (N, 1),
        )
        self.outstanding = np.full(N, int(sum(counts)), dtype=np.int64)
        self.now = np.zeros(N)
        self.completion = np.zeros(N)
        self.done = self.outstanding == 0

        # In-flight transfer slots, git-style grow-on-demand columns.
        self.S = max(4, len(initial_batches) + 2)
        self.slot_rate = np.zeros((N, self.S))
        self.slot_stages = np.zeros((N, self.S), dtype=np.int64)
        self.slot_tasks = np.zeros((N, self.S), dtype=np.int64)
        self.slot_dest = np.zeros((N, self.S), dtype=np.int64)

        all_rows = np.arange(N)
        for source, dest, num in initial_batches:
            self._open_slots(
                all_rows,
                source,
                dest,
                np.full(N, num, dtype=np.int64),
            )

        self._on_failure = _failure_handler(policy, params)

    # -- transfer slots ----------------------------------------------------

    def _grow_slots(self) -> None:
        extra = self.S
        pad_f = np.zeros((self.N, extra))
        pad_i = np.zeros((self.N, extra), dtype=np.int64)
        self.slot_rate = np.concatenate([self.slot_rate, pad_f], axis=1)
        self.slot_stages = np.concatenate([self.slot_stages, pad_i], axis=1)
        self.slot_tasks = np.concatenate([self.slot_tasks, pad_i], axis=1)
        self.slot_dest = np.concatenate([self.slot_dest, pad_i], axis=1)
        self.S += extra

    def _open_slots(
        self, rows: np.ndarray, source: int, dest: int, num_tasks: np.ndarray
    ) -> None:
        """Put a batch of ``num_tasks[r]`` tasks on the wire for each row.

        Rows with a zero batch are skipped; instantaneous links (zero mean
        delay) deliver immediately, mirroring a zero-delay timeout.
        """
        live = num_tasks > 0
        rows, num_tasks = rows[live], num_tasks[live]
        if rows.size == 0:
            return
        model = self.params.delay_model(source, dest)
        stages, rate = _slot_timing(model, num_tasks)

        instant = ~np.isfinite(rate)
        if instant.any():
            self.queue[rows[instant], dest] += num_tasks[instant]
            rows, num_tasks = rows[~instant], num_tasks[~instant]
            stages, rate = stages[~instant], rate[~instant]
            if rows.size == 0:
                return

        free = self.slot_stages[rows] == 0
        while not free.any(axis=1).all():
            self._grow_slots()
            free = self.slot_stages[rows] == 0
        cols = free.argmax(axis=1)
        self.slot_rate[rows, cols] = rate
        self.slot_stages[rows, cols] = stages
        self.slot_tasks[rows, cols] = num_tasks
        self.slot_dest[rows, cols] = dest

    # -- the step loop -----------------------------------------------------

    def run(self) -> np.ndarray:
        n, N = self.n, self.N
        service_rates = self.service_rates
        failure_rates = self.failure_rates
        recovery_rates = self.recovery_rates
        rng = self.rng

        while True:
            active = ~self.done
            if not active.any():
                break

            columns = 3 * n + self.S
            rates = np.empty((N, columns))
            rates[:, :n] = service_rates * (self.up & (self.queue > 0))
            rates[:, n : 2 * n] = failure_rates * self.up
            rates[:, 2 * n : 3 * n] = recovery_rates * ~self.up
            rates[:, 3 * n :] = self.slot_rate * (self.slot_stages > 0)
            rates[self.done] = 0.0

            total = rates.sum(axis=1)
            if np.any(active & (total <= 0.0)):
                raise RuntimeError(
                    "vectorized kernel deadlock: a realisation has outstanding "
                    "tasks but no enabled transition (inconsistent parameters?)"
                )

            # One Gillespie step: holding time ~ Exp(total), category ~ rates.
            dt = rng.exponential(size=N)
            pick = rng.random(N)
            safe = np.where(total > 0.0, total, 1.0)
            self.now = self.now + np.where(active, dt / safe, 0.0)

            if self.horizon is not None and np.any(
                active & (self.now > self.horizon)
            ):
                incomplete = int(np.count_nonzero(active & (self.now > self.horizon)))
                raise IncompleteSimulationError(
                    f"workload incomplete after horizon={self.horizon} "
                    f"({incomplete} realisations outstanding)"
                )

            cumulative = np.cumsum(rates, axis=1)
            event = (cumulative < (pick * total)[:, None]).sum(axis=1)
            np.minimum(event, columns - 1, out=event)

            # -- task completions ------------------------------------------
            mask = active & (event < n)
            if mask.any():
                rows = np.nonzero(mask)[0]
                nodes = event[rows]
                self.queue[rows, nodes] -= 1
                self.outstanding[rows] -= 1
                finished = rows[self.outstanding[rows] == 0]
                self.completion[finished] = self.now[finished]
                self.done[finished] = True

            # -- failures --------------------------------------------------
            mask = active & (event >= n) & (event < 2 * n)
            if mask.any():
                rows = np.nonzero(mask)[0]
                nodes = event[rows] - n
                self.up[rows, nodes] = False
                if self._on_failure is not None:
                    for node in range(n):
                        sub = rows[nodes == node]
                        if sub.size:
                            self._on_failure(self, node, sub)

            # -- recoveries ------------------------------------------------
            mask = active & (event >= 2 * n) & (event < 3 * n)
            if mask.any():
                rows = np.nonzero(mask)[0]
                self.up[rows, event[rows] - 2 * n] = True

            # -- transfer progress -----------------------------------------
            mask = active & (event >= 3 * n)
            if mask.any():
                rows = np.nonzero(mask)[0]
                cols = event[rows] - 3 * n
                self.slot_stages[rows, cols] -= 1
                landed = self.slot_stages[rows, cols] == 0
                rows, cols = rows[landed], cols[landed]
                if rows.size:
                    self.queue[rows, self.slot_dest[rows, cols]] += (
                        self.slot_tasks[rows, cols]
                    )
                    self.slot_rate[rows, cols] = 0.0
                    self.slot_tasks[rows, cols] = 0

        return self.completion


# ---------------------------------------------------------------------------
# Vectorized failure reactions (policy adapters)
# ---------------------------------------------------------------------------

_FailureHandler = Callable[[_BatchKernel, int, np.ndarray], None]


def _transferable(kernel: _BatchKernel, node: int, rows: np.ndarray) -> np.ndarray:
    """Tasks a backup agent can actually take from ``node`` at a failure.

    The node was up when it failed, so whenever its queue is non-empty one
    task is in service; its saved context stays with the node and only the
    remaining ``queue - 1`` waiting tasks are transferable.
    """
    return np.maximum(kernel.queue[rows, node] - 1, 0)


def _lbp2_handler(policy: LBP2, params: SystemParameters) -> _FailureHandler:
    """Eq. (8) compensation: constant sizes, capped like the backup agent."""
    sizes = [compensation_transfer_sizes(j, params) for j in range(params.num_nodes)]

    def handle(kernel: _BatchKernel, node: int, rows: np.ndarray) -> None:
        # The policy sizes its transfers against the full queue, then the
        # backup agent caps each batch by the waiting tasks still available;
        # replicate both budgets elementwise.
        policy_budget = kernel.queue[rows, node].copy()
        waiting = _transferable(kernel, node, rows)
        for receiver, requested in enumerate(sizes[node]):
            if requested <= 0:
                continue
            granted = np.minimum(requested, policy_budget)
            np.maximum(granted, 0, out=granted)
            sent = np.minimum(granted, waiting)
            policy_budget -= granted
            waiting -= sent
            kernel.queue[rows, node] -= sent
            kernel._open_slots(rows, node, receiver, sent)

    return handle


def _send_all_handler(params: SystemParameters) -> _FailureHandler:
    """Vector form of :class:`SendAllOnFailure`: dump the whole queue."""
    rates = np.asarray(params.service_rates, dtype=float)

    def handle(kernel: _BatchKernel, node: int, rows: np.ndarray) -> None:
        others = [i for i in range(params.num_nodes) if i != node]
        if not others:
            return
        weights = rates[others] / rates[others].sum()
        available = kernel.queue[rows, node]
        waiting = _transferable(kernel, node, rows)

        # The policy splits the full queue proportionally (rounded, with the
        # remainder going to the fastest receiver); the backup agent then
        # caps each batch by what is actually still waiting.
        requested: List[Tuple[int, np.ndarray]] = []
        remaining = available.copy()
        for receiver, weight in zip(others, weights):
            num = np.minimum(
                np.rint(weight * available).astype(np.int64), remaining
            )
            np.maximum(num, 0, out=num)
            requested.append((receiver, num))
            remaining = remaining - num
        fastest = max(others, key=lambda i: rates[i])
        requested.append((fastest, np.maximum(remaining, 0)))

        for receiver, num in requested:
            sent = np.minimum(num, waiting)
            waiting = waiting - sent
            kernel.queue[rows, node] -= sent
            kernel._open_slots(rows, node, receiver, sent)

    return handle


def _failure_handler(
    policy: LoadBalancingPolicy, params: SystemParameters
) -> Optional[_FailureHandler]:
    """The vectorized failure reaction for ``policy`` (``None`` = no-op).

    Policies that inherit the base class's no-op hooks need no handler;
    LBP-2 and the send-all baseline have dedicated adapters.  Anything else
    overrides ``on_failure``/``on_recovery`` in ways the kernel cannot
    vectorize and is rejected.
    """
    cls = type(policy)
    if cls.on_recovery is not LoadBalancingPolicy.on_recovery:
        raise BackendUnsupportedError(
            f"policy {policy.name!r} overrides on_recovery; the vectorized "
            "backend cannot replay custom recovery reactions — use "
            "backend='reference'"
        )
    if isinstance(policy, LBP2):
        return _lbp2_handler(policy, params) if policy.compensate else None
    if isinstance(policy, SendAllOnFailure):
        return _send_all_handler(params)
    if cls.on_failure is LoadBalancingPolicy.on_failure:
        return None
    raise BackendUnsupportedError(
        f"policy {policy.name!r} overrides on_failure; the vectorized "
        "backend only knows the built-in failure reactions — use "
        "backend='reference'"
    )


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def simulate_completion_times(
    params: SystemParameters,
    policy: LoadBalancingPolicy,
    workload: Union[Workload, Sequence[int]],
    num_realisations: int,
    seed: SeedLike = None,
    horizon: Optional[float] = None,
) -> np.ndarray:
    """Sample ``num_realisations`` completion times with the batch kernel.

    The sample is drawn from exactly the distribution the event-driven
    simulator samples (the model is a CTMC and the kernel is a batched
    Gillespie algorithm); the stream itself differs, so individual values
    do not match the reference realisation by realisation.
    """
    if num_realisations < 1:
        raise ValueError(
            f"num_realisations must be >= 1, got {num_realisations!r}"
        )
    # Guard here too, not just in run_batch: this is a public entry point,
    # and an unsupported delay law would otherwise be silently mis-sampled
    # (deterministic treated as exponential) instead of raising.
    _check_delay_model(params.delay)
    for _, model in params.pairwise_delay_overrides:
        _check_delay_model(model)
    counts = validate_workload(tuple(workload), params)
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    rng = np.random.default_rng(root)
    kernel = _BatchKernel(params, policy, counts, num_realisations, rng, horizon)
    return kernel.run()


class VectorizedBackend(ExecutionBackend):
    """NumPy batch execution of all realisations at once (exact CTMC sampler)."""

    name = "vectorized"

    def ensure_supported(
        self,
        params: SystemParameters,
        policy: LoadBalancingPolicy,
        workload: Union[Workload, Sequence[int]],
        **system_kwargs,
    ) -> None:
        unknown = set(system_kwargs) - _KNOWN_SYSTEM_KWARGS
        if unknown:
            raise BackendUnsupportedError(
                f"the vectorized backend does not understand system options "
                f"{sorted(unknown)}; use backend='reference'"
            )
        if system_kwargs.get("record_trace"):
            raise BackendUnsupportedError(
                "the vectorized backend aggregates realisations and cannot "
                "record per-run traces; use backend='reference'"
            )
        preemption = system_kwargs.get("preemption", "resume")
        if preemption not in ("resume", "restart"):
            raise BackendUnsupportedError(
                f"unknown preemption mode {preemption!r}"
            )
        _check_delay_model(params.delay)
        for _, model in params.pairwise_delay_overrides:
            _check_delay_model(model)
        _failure_handler(policy, params)

    def run_batch(
        self,
        params: SystemParameters,
        policy: LoadBalancingPolicy,
        workload: Union[Workload, Sequence[int]],
        num_realisations: int,
        seed: SeedLike = None,
        horizon: Optional[float] = None,
        confidence_level: float = 0.95,
        workers: Optional[int] = None,
        executor: Optional[Executor] = None,
        **system_kwargs,
    ) -> MonteCarloEstimate:
        # workers/executor are accepted for interface parity and ignored:
        # the kernel is a single array program, not a task farm.
        del workers, executor
        self.ensure_supported(params, policy, workload, **system_kwargs)
        workload_obj = (
            workload if isinstance(workload, Workload) else Workload(tuple(workload))
        )
        times = simulate_completion_times(
            params,
            policy,
            workload_obj,
            num_realisations,
            seed=seed,
            horizon=horizon,
        )
        return MonteCarloEstimate.from_sample(
            policy_name=policy.name,
            workload=tuple(workload_obj),
            completion_times=times,
            confidence_level=confidence_level,
        )


register_backend(VectorizedBackend())
