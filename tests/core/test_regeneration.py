"""Tests for the shared regeneration machinery (exit rates, coupling matrices)."""

import numpy as np
import pytest

from repro.core.regeneration import (
    TwoNodeRates,
    batched_coupling_systems,
    coupling_system,
    exit_rate_components,
)
from repro.core.state import all_work_states


class TestTwoNodeRates:
    def test_from_params(self, paper_params):
        rates = TwoNodeRates.from_params(paper_params)
        assert rates.service == (1.08, 1.86)
        assert rates.failure == (pytest.approx(0.05), pytest.approx(0.05))
        assert rates.recovery == (pytest.approx(0.1), pytest.approx(0.05))

    def test_requires_two_nodes(self, three_node_params):
        with pytest.raises(ValueError):
            TwoNodeRates.from_params(three_node_params)


class TestExitRateComponents:
    def test_paper_lambda_constants(self, paper_params):
        """The base+service decomposition reproduces λ_A..λ_D of eq. (4)."""
        rates = TwoNodeRates.from_params(paper_params)
        states = all_work_states(2)
        transit_rate = 1.0 / (0.02 * 35)  # λ_21 for a 35-task batch
        base, svc0, svc1 = exit_rate_components(states, rates, transit_rate)
        idx = {state: k for k, state in enumerate(states)}

        lam_d1, lam_d2 = 1.08, 1.86
        lam_f1 = lam_f2 = 0.05
        lam_r1, lam_r2 = 0.1, 0.05

        # λ_A: both nodes down -> recoveries + transfer.
        assert base[idx[(0, 0)]] == pytest.approx(lam_r1 + lam_r2 + transit_rate)
        # λ_B: node 1 down, node 2 up (plus node-2 service when it has tasks).
        assert base[idx[(0, 1)]] + svc1[idx[(0, 1)]] == pytest.approx(
            lam_d2 + lam_r1 + lam_f2 + transit_rate
        )
        # λ_C: node 1 up, node 2 down.
        assert base[idx[(1, 0)]] + svc0[idx[(1, 0)]] == pytest.approx(
            lam_d1 + lam_f1 + lam_r2 + transit_rate
        )
        # λ_D: both up.
        assert base[idx[(1, 1)]] + svc0[idx[(1, 1)]] + svc1[idx[(1, 1)]] == pytest.approx(
            lam_d1 + lam_d2 + lam_f1 + lam_f2 + transit_rate
        )

    def test_service_components_only_for_up_nodes(self, paper_params):
        rates = TwoNodeRates.from_params(paper_params)
        states = all_work_states(2)
        _, svc0, svc1 = exit_rate_components(states, rates, 0.0)
        idx = {state: k for k, state in enumerate(states)}
        assert svc0[idx[(0, 1)]] == 0.0
        assert svc1[idx[(0, 1)]] == pytest.approx(1.86)
        assert svc0[idx[(1, 0)]] == pytest.approx(1.08)
        assert svc1[idx[(1, 0)]] == 0.0

    def test_negative_transit_rate_rejected(self, paper_params):
        rates = TwoNodeRates.from_params(paper_params)
        with pytest.raises(ValueError):
            exit_rate_components(all_work_states(2), rates, -1.0)


class TestCouplingSystems:
    def test_matrix_matches_paper_equation_4(self, paper_params):
        """Row of A for state (0,0) is [1, -λ_r2/λ_A, -λ_r1/λ_A, 0]."""
        states = all_work_states(2)
        rates = TwoNodeRates.from_params(paper_params)
        transit_rate = 1.0
        base, svc0, svc1 = exit_rate_components(states, rates, transit_rate)
        # Both nodes hold tasks: full exit rates.
        lam = base + svc0 + svc1
        matrix = coupling_system(states, paper_params, lam)
        idx = {state: k for k, state in enumerate(states)}

        lam_a = lam[idx[(0, 0)]]
        row = matrix[idx[(0, 0)]]
        assert row[idx[(0, 0)]] == pytest.approx(1.0)
        assert row[idx[(0, 1)]] == pytest.approx(-0.05 / lam_a)   # -λ_r2/λ_A
        assert row[idx[(1, 0)]] == pytest.approx(-0.1 / lam_a)    # -λ_r1/λ_A
        assert row[idx[(1, 1)]] == pytest.approx(0.0)

        lam_d = lam[idx[(1, 1)]]
        row = matrix[idx[(1, 1)]]
        assert row[idx[(0, 1)]] == pytest.approx(-0.05 / lam_d)   # -λ_f1/λ_D
        assert row[idx[(1, 0)]] == pytest.approx(-0.05 / lam_d)   # -λ_f2/λ_D
        assert row[idx[(0, 0)]] == pytest.approx(0.0)

    def test_zero_exit_rate_rejected(self, no_failure_params):
        states = all_work_states(2)
        with pytest.raises(ValueError):
            coupling_system(states, no_failure_params, np.zeros(4))

    def test_batched_matches_single(self, paper_params):
        states = all_work_states(2)
        rates = TwoNodeRates.from_params(paper_params)
        base, svc0, svc1 = exit_rate_components(states, rates, 0.5)
        lam_full = base + svc0 + svc1
        lam_no0 = base + svc1

        batch = batched_coupling_systems(
            states, paper_params, np.vstack([lam_full, lam_no0])
        )
        assert np.allclose(batch[0], coupling_system(states, paper_params, lam_full))
        assert np.allclose(batch[1], coupling_system(states, paper_params, lam_no0))

    def test_batched_shape_validation(self, paper_params):
        states = all_work_states(2)
        with pytest.raises(ValueError):
            batched_coupling_systems(states, paper_params, np.ones((3, 2)))

    def test_coupling_matrix_is_diagonally_dominant(self, paper_params):
        """|A_ss| >= Σ_{s'≠s} |A_ss'| guarantees solvability of eq. (4)."""
        states = all_work_states(2)
        rates = TwoNodeRates.from_params(paper_params)
        base, svc0, svc1 = exit_rate_components(states, rates, 0.8)
        lam = base + svc0 + svc1
        matrix = coupling_system(states, paper_params, lam)
        for row in matrix:
            diagonal = abs(row[np.argmax(np.abs(row))])
            assert abs(row).sum() - diagonal <= diagonal + 1e-12
