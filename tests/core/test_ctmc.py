"""Tests for the absorbing-CTMC machinery."""

import numpy as np
import pytest
from scipy import sparse

from repro.core.ctmc import AbsorbingCTMC, build_chain, build_two_node_lbp1_chain
from repro.core.parameters import NodeParameters, SystemParameters, TransferDelayModel


def two_state_chain(rate=2.0):
    """A single exponential step to absorption: E[T] = 1/rate."""
    generator = sparse.csr_matrix(np.array([[-rate, rate], [0.0, 0.0]]))
    return AbsorbingCTMC(generator, np.array([False, True]), states=["start", "done"])


def three_state_chain(a=1.0, b=3.0):
    """start -> middle -> done: E[T] = 1/a + 1/b."""
    generator = sparse.csr_matrix(
        np.array([[-a, a, 0.0], [0.0, -b, b], [0.0, 0.0, 0.0]])
    )
    return AbsorbingCTMC(generator, np.array([False, False, True]))


class TestValidation:
    def test_generator_must_be_square(self):
        with pytest.raises(ValueError):
            AbsorbingCTMC(sparse.csr_matrix(np.ones((2, 3))), np.array([False, True]))

    def test_mask_length_checked(self):
        generator = sparse.csr_matrix(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            AbsorbingCTMC(generator, np.array([True]))

    def test_needs_an_absorbing_state(self):
        generator = sparse.csr_matrix(np.array([[-1.0, 1.0], [1.0, -1.0]]))
        with pytest.raises(ValueError):
            AbsorbingCTMC(generator, np.array([False, False]))

    def test_rows_must_sum_to_zero(self):
        generator = sparse.csr_matrix(np.array([[-1.0, 2.0], [0.0, 0.0]]))
        with pytest.raises(ValueError):
            AbsorbingCTMC(generator, np.array([False, True]))


class TestExpectedAbsorption:
    def test_single_step(self):
        chain = two_state_chain(rate=2.0)
        assert chain.expected_absorption_time(0) == pytest.approx(0.5)

    def test_absorbing_start_takes_zero_time(self):
        chain = two_state_chain()
        assert chain.expected_absorption_time(1) == 0.0

    def test_two_step_chain(self):
        chain = three_state_chain(a=1.0, b=3.0)
        assert chain.expected_absorption_time(0) == pytest.approx(1.0 + 1.0 / 3.0)
        assert chain.expected_absorption_time(1) == pytest.approx(1.0 / 3.0)

    def test_all_states_at_once(self):
        chain = three_state_chain(a=2.0, b=4.0)
        times = chain.expected_absorption_times()
        assert times[0] == pytest.approx(0.5 + 0.25)
        assert times[1] == pytest.approx(0.25)
        assert times[2] == 0.0

    def test_out_of_range_start_rejected(self):
        with pytest.raises(IndexError):
            two_state_chain().expected_absorption_time(5)


class TestTransientAnalysis:
    def test_single_step_cdf_is_exponential(self):
        chain = two_state_chain(rate=2.0)
        times = np.linspace(0, 3, 20)
        cdf = chain.absorption_cdf(0, times)
        assert np.allclose(cdf, 1.0 - np.exp(-2.0 * times), atol=1e-8)

    @pytest.mark.parametrize("method", ["uniformization", "expm", "ode"])
    def test_methods_agree(self, method):
        chain = three_state_chain(a=1.5, b=0.7)
        times = np.linspace(0, 8, 15)
        reference = chain.absorption_cdf(0, times, method="uniformization")
        other = chain.absorption_cdf(0, times, method=method)
        assert np.allclose(reference, other, atol=1e-6)

    def test_cdf_monotone_and_bounded(self):
        chain = three_state_chain()
        cdf = chain.absorption_cdf(0, np.linspace(0, 20, 40))
        assert np.all(np.diff(cdf) >= -1e-12)
        assert np.all((cdf >= 0) & (cdf <= 1 + 1e-12))

    def test_cdf_at_time_zero_is_zero_for_transient_start(self):
        chain = two_state_chain()
        assert chain.absorption_cdf(0, [0.0])[0] == pytest.approx(0.0)

    def test_distribution_rows_sum_to_one(self):
        chain = three_state_chain()
        distribution = chain.transient_distribution(0, np.linspace(0, 5, 10))
        assert np.allclose(distribution.sum(axis=1), 1.0, atol=1e-9)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            two_state_chain().transient_distribution(0, [-1.0])

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            two_state_chain().transient_distribution(0, [1.0], method="laplace")

    def test_mean_from_cdf_matches_direct_solution(self):
        chain = three_state_chain(a=1.0, b=2.0)
        times = np.linspace(0, 60, 2000)
        cdf = chain.absorption_cdf(0, times)
        mean_from_cdf = np.trapezoid(1.0 - cdf, times)
        assert mean_from_cdf == pytest.approx(chain.expected_absorption_time(0), rel=1e-3)


class TestBuildChain:
    def test_simple_birth_death(self):
        def successors(state):
            return [(state - 1, 2.0)] if state > 0 else []

        result = build_chain(3, successors, lambda s: s == 0)
        assert result.chain.num_states == 4
        assert result.chain.expected_absorption_time(result.start_index) == pytest.approx(1.5)

    def test_dead_end_state_detected(self):
        def successors(state):
            return []  # no way out and not absorbing

        with pytest.raises(ValueError):
            build_chain("stuck", successors, lambda s: False)

    def test_unpacking_protocol(self):
        def successors(state):
            return [(state - 1, 1.0)] if state > 0 else []

        chain, start = build_chain(1, successors, lambda s: s == 0)
        assert start == 0
        assert chain.num_states == 2


class TestTwoNodeChainBuilder:
    def test_without_transit_small_case(self):
        params = SystemParameters(
            nodes=(NodeParameters(2.0), NodeParameters(1.0)),
            delay=TransferDelayModel(0.02),
        )
        chain, start = build_two_node_lbp1_chain(params, tasks=(3, 0))
        assert chain.expected_absorption_time(start) == pytest.approx(1.5)

    def test_instantaneous_transit_folded_into_destination(self):
        params = SystemParameters(
            nodes=(NodeParameters(2.0), NodeParameters(1.0)),
            delay=TransferDelayModel(0.0),
        )
        chain, start = build_two_node_lbp1_chain(
            params, tasks=(0, 0), in_transit=4, destination=1
        )
        assert chain.expected_absorption_time(start) == pytest.approx(4.0)

    def test_state_space_size_without_failures(self):
        params = SystemParameters(
            nodes=(NodeParameters(1.0), NodeParameters(1.0)),
            delay=TransferDelayModel(0.02),
        )
        chain, _ = build_two_node_lbp1_chain(params, tasks=(2, 2))
        # Only the (1,1) work state is reachable: (2+1)*(2+1) load states.
        assert chain.num_states == 9

    def test_invalid_inputs_rejected(self, paper_params):
        with pytest.raises(ValueError):
            build_two_node_lbp1_chain(paper_params, tasks=(-1, 0))
        with pytest.raises(ValueError):
            build_two_node_lbp1_chain(paper_params, tasks=(1, 1), in_transit=-2)
        with pytest.raises(IndexError):
            build_two_node_lbp1_chain(paper_params, tasks=(1, 1), in_transit=1, destination=4)
