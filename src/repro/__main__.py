"""Command-line entry point: regenerate the paper's evaluation from a shell.

Usage::

    python -m repro                      # quick summary (headline numbers)
    python -m repro fig3                 # regenerate one artefact
    python -m repro all                  # regenerate every figure and table
    python -m repro fig3 --quick         # reduced realisation counts
    python -m repro fig3 --seed 7        # reproducible alternate seed
    python -m repro table3 --workers 4   # parallel Monte-Carlo

    python -m repro scenario list                 # catalog + families
    python -m repro scenario run fig3 --quick     # cached scenario run
    python -m repro scenario sweep delay-sweep    # expand + run a family
    python -m repro scenario compare smoke churn/paper
    python -m repro scenario run smoke --backend vectorized

    python -m repro bench --quick                 # time the backends,
                                                  # write BENCH_results.json
    python -m repro bench --distributed --quick   # shard-scaling curve,
                                                  # write BENCH_distributed.json

    python -m repro scenario sweep gain-sweep --quick --executor process
    python -m repro scenario run smoke --shards 4 # sharded Monte-Carlo
    python -m repro scenario run fig3 --profile   # span-tree timing report
    python -m repro bench --distributed --trace-output trace.ndjson

    python -m repro serve --port 8077             # HTTP results service
    python -m repro worker --connect http://HOST:8077   # join the shard fleet
    python -m repro fleet --connect http://HOST:8077 --watch 2  # fleet table
    python -m repro serve --log-level debug       # shared logging formatter
    python -m repro scenario list --json          # machine-readable catalog
    python -m repro docs                          # regenerate docs/scenario-catalog.md
    python -m repro docs --check --check-links    # CI: docs fresh, links valid

The heavy lifting lives in :mod:`repro.experiments`, :mod:`repro.scenarios`,
:mod:`repro.backends`, :mod:`repro.montecarlo.engine` and
:mod:`repro.service`; this module only parses arguments and prints the
rendered tables/series.  Every Monte-Carlo ensemble — serial, pooled,
vectorized or sharded — runs through the one block-planned engine, so
``--workers``/``--shards``/``--executor`` change *where* work runs, never
the result.  Scenario runs are content-addressed: an unchanged scenario is
served from the on-disk cache (``REPRO_CACHE_DIR`` or ``~/.cache/repro``),
and completed seed blocks persist in the shard store for resume and
delta-growth.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional

def _driver(name: str):
    """Resolve an experiment driver at call time (keeps CLI start-up fast)."""
    import repro.experiments as experiments

    return getattr(experiments, name)


def _seeded(seed: Optional[int]) -> dict:
    """Keyword override for drivers when an explicit seed is requested."""
    return {} if seed is None else {"seed": seed}


def _scenario_artefact(name: str, quick: bool, seed: Optional[int], workers: Optional[int]):
    """Run a paper artefact through the scenario registry + cache."""
    from repro.scenarios import Orchestrator

    with Orchestrator(workers=workers) as orchestrator:
        return orchestrator.run(name, quick=quick, seed=seed)


#: artefact name -> (full-size invocation, quick invocation); every entry
#: accepts ``seed``/``workers`` keywords from the command line.  fig3 and
#: table3 are thin consumers of the scenario registry (content-addressed
#: caching included); the remaining artefacts still call their drivers
#: directly.
_ARTEFACTS: Dict[str, Dict[str, Callable[..., object]]] = {
    "fig1": {
        "full": lambda seed=None, workers=None: _driver("run_fig1")(**_seeded(seed)),
        "quick": lambda seed=None, workers=None: _driver("run_fig1")(
            tasks_per_node=500, **_seeded(seed)
        ),
    },
    "fig2": {
        "full": lambda seed=None, workers=None: _driver("run_fig2")(**_seeded(seed)),
        "quick": lambda seed=None, workers=None: _driver("run_fig2")(
            probes_per_size=15, **_seeded(seed)
        ),
    },
    "fig3": {
        "full": lambda seed=None, workers=None: _scenario_artefact(
            "fig3", False, seed, workers
        ),
        "quick": lambda seed=None, workers=None: _scenario_artefact(
            "fig3", True, seed, workers
        ),
    },
    "fig4": {
        "full": lambda seed=None, workers=None: _driver("run_fig4")(**_seeded(seed)),
        # A genuinely reduced configuration: half-size workload, so the
        # traced realisation completes in a fraction of the full run.
        "quick": lambda seed=None, workers=None: _driver("run_fig4")(
            workload=(50, 30), **_seeded(seed)
        ),
    },
    "fig5": {
        "full": lambda seed=None, workers=None: _driver("run_fig5")(
            with_monte_carlo=True, **_seeded(seed)
        ),
        "quick": lambda seed=None, workers=None: _driver("run_fig5")(**_seeded(seed)),
    },
    "table1": {
        "full": lambda seed=None, workers=None: _driver("run_table1")(**_seeded(seed)),
        "quick": lambda seed=None, workers=None: _driver("run_table1")(
            experiment_realisations=5, **_seeded(seed)
        ),
    },
    "table2": {
        "full": lambda seed=None, workers=None: _driver("run_table2")(
            mc_realisations=500, experiment_realisations=60, **_seeded(seed)
        ),
        "quick": lambda seed=None, workers=None: _driver("run_table2")(
            mc_realisations=80, experiment_realisations=10, **_seeded(seed)
        ),
    },
    "table3": {
        "full": lambda seed=None, workers=None: _scenario_artefact(
            "table3", False, seed, workers
        ),
        "quick": lambda seed=None, workers=None: _scenario_artefact(
            "table3", True, seed, workers
        ),
    },
}


def _summary() -> str:
    """Headline reproduction numbers, computed analytically (fast)."""
    from repro.core.optimize import optimal_gain_lbp1, optimal_gain_no_failure
    from repro.core.parameters import paper_parameters

    params = paper_parameters()
    failure = optimal_gain_lbp1(params, (100, 60))
    clean = optimal_gain_no_failure(params, (100, 60))
    lines = [
        "repro — Dhakal et al., IPDPS 2006 (load balancing under node failure/recovery)",
        "",
        f"  optimal LBP-1 gain with failures    : K = {failure.optimal_gain:.2f}"
        f"   (paper: 0.35)",
        f"  optimal LBP-1 gain without failures : K = {clean.optimal_gain:.2f}"
        f"   (paper: 0.45)",
        f"  minimum mean completion time        : {failure.optimal_mean:.1f} s"
        f" (paper: ~117 s)",
        "",
        "Regenerate individual artefacts with, e.g.:",
        "  python -m repro fig3",
        "  python -m repro table3 --quick",
        f"Available artefacts: {', '.join(sorted(_ARTEFACTS))}, all",
        "",
        "Explore the scenario catalog (content-addressed result cache):",
        "  python -m repro scenario list",
        "  python -m repro scenario run fig3 --quick",
        "  python -m repro scenario sweep delay-sweep --quick",
        "",
        "Benchmark the execution backends (reference vs vectorized):",
        "  python -m repro bench --quick",
        "  python -m repro scenario run mc-scaling --backend vectorized",
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# `python -m repro scenario ...` subcommands
# ---------------------------------------------------------------------------


def _print_result(result, mode: str, elapsed: float, name: Optional[str] = None) -> None:
    cached = ", cached" if getattr(result, "from_cache", False) else ""
    name = name if name is not None else result.name
    print(f"=== {name} ({mode}, {elapsed:.1f} s{cached}) ===")
    print(result.render())
    print()


def _scenario_list(as_json: bool = False) -> int:
    if as_json:
        import json

        from repro.scenarios.catalog import catalog_payload

        print(json.dumps(catalog_payload(), indent=2, sort_keys=True))
        return 0

    from repro.scenarios import family_names, get_entry, get_family, scenario_names

    print("Scenarios (run with `python -m repro scenario run <name>`):")
    for name in scenario_names():
        entry = get_entry(name)
        print(f"  {name:<14} {entry.description}")
        print(f"  {'':<14}   hash {entry.spec.content_hash[:12]} "
              f"(quick {entry.quick.content_hash[:12]})")
    print()
    print("Families (run with `python -m repro scenario sweep <family>`):")
    for name in family_names():
        family = get_family(name)
        points = family.expand(quick=False)
        print(f"  {name:<14} {family.description} [{len(points)} points]")
        for point in points:
            print(f"  {'':<14}   {point.name}")
    return 0


def _scenario_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro scenario",
        description="Scenario catalog: list, run, sweep and compare scenarios "
        "with content-addressed result caching.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser("list", help="show the scenario catalog and families")
    list_p.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable catalog (same payload the docs "
        "generator and the results service use)",
    )

    run_p = sub.add_parser("run", help="run one or more named scenarios")
    run_p.add_argument("names", nargs="+", help="scenario names (or family/point)")

    sweep_p = sub.add_parser("sweep", help="expand a scenario family and run it")
    sweep_p.add_argument("family", help="family name (see `scenario list`)")

    compare_p = sub.add_parser("compare", help="tabulate headline numbers")
    compare_p.add_argument("names", nargs="+", help="scenario names to compare")

    for p in (run_p, sweep_p, compare_p):
        p.add_argument("--quick", action="store_true",
                       help="use reduced realisation counts")
        p.add_argument("--seed", type=int, default=None,
                       help="override the scenario's root seed")
        p.add_argument("--workers", type=int, default=None,
                       help="size of the shared Monte-Carlo process pool")
        p.add_argument("--backend", default=None,
                       help="execution backend for Monte-Carlo estimates "
                       "(reference|vectorized; participates in the cache key)")
        p.add_argument("--shards", type=int, default=None,
                       help="run Monte-Carlo kinds sharded with this many "
                       "work items (participates in the cache key; merged "
                       "results are shard-count invariant)")
        p.add_argument("--executor", default=None,
                       choices=["inline", "process"],
                       help="where engine work items run for sharded kinds "
                       "(default: process when --workers is set, else "
                       "inline); does not affect results")
        p.add_argument("--force", action="store_true",
                       help="recompute even if a cached result exists")
        p.add_argument("--no-cache", action="store_true",
                       help="neither read nor write the result cache")
        p.add_argument("--profile", action="store_true",
                       help="trace the run and print a span-tree timing "
                       "report (plan/execute/merge, per-shard) afterwards")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _scenario_list(as_json=args.json)

    import contextlib

    from repro.scenarios import Orchestrator, get_family

    tracer = None
    activation = contextlib.nullcontext()
    if args.profile:
        from repro.obs.trace import Tracer

        tracer = Tracer()
        activation = tracer.activate()

    mode = "quick" if args.quick else "full"
    try:
        with activation, Orchestrator(
            workers=args.workers,
            use_cache=not args.no_cache,
            shard_executor=args.executor,
        ) as orchestrator:
            if args.command == "run":
                for name in args.names:
                    started = time.perf_counter()
                    result = orchestrator.run(
                        name,
                        quick=args.quick,
                        force=args.force,
                        seed=args.seed,
                        backend=args.backend,
                        shards=args.shards,
                    )
                    _print_result(result, mode, time.perf_counter() - started)
            elif args.command == "sweep":
                family = get_family(args.family)
                for spec in family.expand(args.quick):
                    if args.seed is not None:
                        spec = spec.with_(seed=args.seed)
                    started = time.perf_counter()
                    result = orchestrator.run(
                        spec,
                        force=args.force,
                        backend=args.backend,
                        shards=args.shards,
                    )
                    _print_result(result, mode, time.perf_counter() - started)
            else:  # compare
                names = list(args.names)
                if args.seed is not None:
                    from repro.scenarios import resolve

                    names = [
                        resolve(name, quick=args.quick).with_(seed=args.seed)
                        for name in names
                    ]
                print(
                    orchestrator.compare(
                        names,
                        quick=args.quick,
                        force=args.force,
                        backend=args.backend,
                        shards=args.shards,
                    )
                )
    except KeyError as error:
        # Unknown scenario / family names: a clean message, not a traceback.
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    except ValueError as error:
        # Unknown backends / backend-incompatible kinds: same treatment.
        print(f"error: {error}", file=sys.stderr)
        return 2
    if tracer is not None:
        print("=== timing profile ===")
        print(tracer.render_tree())
    return 0


# ---------------------------------------------------------------------------
# `python -m repro bench ...` subcommand
# ---------------------------------------------------------------------------


def _bench_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Time the execution backends against each other, KS-test "
        "statistical parity and write machine-readable BENCH_results.json.",
    )
    parser.add_argument(
        "scenarios",
        nargs="*",
        help="mc_point scenarios to benchmark (default: every benchable "
        "registry point, or the smoke set with --quick)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="benchmark the CI smoke set with quick realisation counts",
    )
    parser.add_argument(
        "--backends",
        default=None,
        help="comma-separated backends to time (default: reference,vectorized)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override every scenario's seed"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="timing repeats per backend (best wall time is kept)",
    )
    parser.add_argument(
        "--alpha",
        type=float,
        default=None,
        help="significance level of the KS parity gate (default 0.01)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the JSON report (default: ./BENCH_results.json, "
        "or ./BENCH_distributed.json with --distributed)",
    )
    parser.add_argument(
        "--distributed",
        action="store_true",
        help="benchmark the sharded runner instead: wall-clock vs process-"
        "pool worker count, written to BENCH_distributed.json",
    )
    parser.add_argument(
        "--worker-counts",
        default=None,
        help="comma-separated pool sizes for --distributed (default: 1,2,4)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for --distributed (default: the scenario's, or "
        "2x the largest worker count)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="with --distributed: compare against this committed baseline "
        "report and fail on determinism drift or throughput regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=10.0,
        help="allowed throughput regression factor vs the baseline "
        "(default 10; merged statistics must always match exactly)",
    )
    parser.add_argument(
        "--trace-output",
        default=None,
        help="with --distributed: also write the span trace of the whole "
        "benchmark (one JSON span per line) to this NDJSON file",
    )
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=None,
        metavar="MIN",
        help="with --distributed: fail unless every multi-worker run beats "
        "MIN x speedup over 1 worker; counts above the machine's effective "
        "CPU budget are loudly skipped, never failed (a 1-CPU container "
        "cannot parallelize, and pretending it can would gate on noise)",
    )
    args = parser.parse_args(argv)

    if args.distributed:
        return _bench_distributed(args)

    from repro.backends.bench import DEFAULT_ALPHA, DEFAULT_BACKENDS, run_benchmark

    backends = (
        tuple(name.strip() for name in args.backends.split(",") if name.strip())
        if args.backends
        else DEFAULT_BACKENDS
    )
    try:
        report = run_benchmark(
            scenarios=args.scenarios or None,
            backends=backends,
            quick=args.quick,
            seed=args.seed,
            alpha=DEFAULT_ALPHA if args.alpha is None else args.alpha,
            repeats=args.repeats,
        )
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2
    print(report.render())
    path = report.save(args.output or "BENCH_results.json")
    print(f"wrote {path}")
    return 0 if report.all_parity_passed else 1


def _bench_distributed(args) -> int:
    """`python -m repro bench --distributed`: shard-scaling curve + gate."""
    import json

    from repro.backends.bench import (
        DEFAULT_WORKER_COUNTS,
        compare_distributed_reports,
        run_distributed_benchmark,
    )

    if len(args.scenarios) > 1:
        print("error: --distributed benchmarks one scenario", file=sys.stderr)
        return 2
    worker_counts = (
        tuple(int(c) for c in args.worker_counts.split(",") if c.strip())
        if args.worker_counts
        else DEFAULT_WORKER_COUNTS
    )
    tracer = None
    if args.trace_output:
        from repro.obs.trace import Tracer

        tracer = Tracer()
    try:
        report = run_distributed_benchmark(
            scenario=args.scenarios[0] if args.scenarios else "mc-scaling",
            quick=args.quick,
            worker_counts=worker_counts,
            shards=args.shards,
            seed=args.seed,
            tracer=tracer,
        )
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2
    print(report.render())
    if tracer is not None:
        with open(args.trace_output, "w", encoding="utf-8") as handle:
            handle.write(tracer.to_ndjson())
        print(f"wrote {args.trace_output} ({len(tracer)} spans)")
    path = report.save(args.output or "BENCH_distributed.json")
    print(f"wrote {path}")
    if not report.merge_invariant:
        print(
            "error: merged statistics diverged across worker counts",
            file=sys.stderr,
        )
        return 1
    if args.baseline:
        try:
            baseline = json.loads(open(args.baseline).read())
        except (OSError, ValueError) as error:
            print(f"error: cannot read baseline: {error}", file=sys.stderr)
            return 2
        problems = compare_distributed_reports(
            report.to_dict(), baseline, tolerance=args.tolerance
        )
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(f"baseline gate passed (tolerance {args.tolerance:g}x)")
    if args.require_speedup is not None:
        from repro.backends.bench import (
            effective_cpu_count,
            speedup_gate_problems,
        )

        cpus = effective_cpu_count()
        problems, skipped = speedup_gate_problems(
            report, args.require_speedup, effective_cpus=cpus
        )
        for count in skipped:
            print(
                f"speedup gate: SKIPPED at {count} workers — this machine "
                f"exposes only {cpus} effective CPU(s); run on a multicore "
                f"machine to enforce the gate there"
            )
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        if problems:
            return 1
        enforced = [
            t.worker_count
            for t in report.timings
            if 1 < t.worker_count <= cpus
        ]
        if enforced:
            print(
                f"speedup gate passed (> {args.require_speedup:g}x at "
                f"{', '.join(str(c) for c in enforced)} workers)"
            )
    return 0


# ---------------------------------------------------------------------------
# `python -m repro serve ...` subcommand
# ---------------------------------------------------------------------------


def _serve_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the scenario results service: an HTTP API for "
        "browsing the catalog, submitting runs/sweeps as background jobs "
        "and fetching content-addressed results (cache hits never touch "
        "the numerical stack).",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8077,
                        help="port to bind; 0 picks a free one (default 8077)")
    parser.add_argument("--workers", type=int, default=None,
                        help="size of the shared Monte-Carlo process pool")
    _add_log_level(parser)
    args = parser.parse_args(argv)
    _setup_logging(args.log_level)

    from repro.service.app import serve

    return serve(host=args.host, port=args.port, workers=args.workers)


# ---------------------------------------------------------------------------
# `python -m repro worker ...` subcommand
# ---------------------------------------------------------------------------


def _worker_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro worker",
        description="Join a results service's shard fleet: pull shard work "
        "items over HTTP, execute them with the local numerical stack and "
        "post partial results back.  Workers may appear, crash and "
        "reconnect at any time — the service's scheduler reassigns lost "
        "shards.",
    )
    parser.add_argument("--connect", required=True,
                        help="base URL of the results service "
                        "(e.g. http://127.0.0.1:8077)")
    parser.add_argument("--name", default=None,
                        help="worker name shown in the fleet view "
                        "(default: hostname-pid)")
    parser.add_argument("--poll", type=float, default=0.2,
                        help="seconds between idle polls (default 0.2; "
                        "empty polls back off exponentially from here)")
    parser.add_argument("--batch", type=int, default=None,
                        help="work items to claim per round-trip "
                        "(default 4; older services hand out one)")
    parser.add_argument("--max-idle", type=float, default=None,
                        help="exit cleanly after this many idle seconds "
                        "(default: run until interrupted)")
    parser.add_argument("--once", action="store_true",
                        help="exit after executing one work item")
    _add_log_level(parser)
    args = parser.parse_args(argv)

    from repro.distributed.work import worker_name
    from repro.distributed.worker import run_worker

    _setup_logging(args.log_level, worker_id=worker_name(args.name))

    try:
        kwargs = dict(
            name=args.name,
            poll_interval=args.poll,
            max_idle=args.max_idle,
            once=args.once,
        )
        if args.batch is not None:
            kwargs["batch"] = args.batch
        return run_worker(args.connect, **kwargs)
    except KeyboardInterrupt:
        return 0


# ---------------------------------------------------------------------------
# `python -m repro fleet ...` subcommand
# ---------------------------------------------------------------------------


def _fleet_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro fleet",
        description="Show aggregated worker telemetry from a running results "
        "service (GET /v1/fleet): items executed, busy fraction and claim "
        "latency per worker, as a one-shot or refreshing table.",
    )
    parser.add_argument("--connect", required=True,
                        help="base URL of the results service "
                        "(e.g. http://127.0.0.1:8077)")
    parser.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                        help="refresh the table every SECONDS until "
                        "interrupted (default: print once and exit)")
    parser.add_argument("--json", action="store_true",
                        help="emit the raw /v1/fleet JSON instead of a table")
    _add_log_level(parser)
    args = parser.parse_args(argv)
    _setup_logging(args.log_level)

    import json

    from repro.obs.fleet import render_fleet_table
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.connect, timeout=30.0)

    def show() -> None:
        summary = client.fleet()
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(render_fleet_table(summary))

    try:
        if args.watch is None:
            show()
            return 0
        while True:
            show()
            print()
            time.sleep(max(args.watch, 0.1))
    except KeyboardInterrupt:
        return 0
    except (ServiceError, OSError) as error:
        print(f"error: cannot reach {args.connect}: {error}", file=sys.stderr)
        return 1


# ---------------------------------------------------------------------------
# `python -m repro docs ...` subcommand
# ---------------------------------------------------------------------------


def _docs_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro docs",
        description="Regenerate docs/scenario-catalog.md from the scenario "
        "registry, or verify it (and the repo's markdown links) for CI.",
    )
    parser.add_argument("--check", action="store_true",
                        help="fail instead of writing when the committed "
                        "catalog page is stale")
    parser.add_argument("--check-links", action="store_true",
                        help="verify relative links and anchors in "
                        "README.md and docs/*.md")
    parser.add_argument("--root", default=".",
                        help="repository root holding README.md and docs/ "
                        "(default: current directory)")
    args = parser.parse_args(argv)

    from repro.docsgen import check_catalog, check_links, write_catalog

    failures = 0
    if args.check:
        message = check_catalog(args.root)
        if message is not None:
            print(f"error: {message}", file=sys.stderr)
            failures += 1
        else:
            print("docs/scenario-catalog.md is up to date")
    elif not args.check_links:
        path, changed = write_catalog(args.root)
        print(f"{'wrote' if changed else 'unchanged'} {path}")
    if args.check_links:
        problems = check_links(args.root)
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        if problems:
            failures += 1
        else:
            print("markdown links OK")
    return 1 if failures else 0


def _add_log_level(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-level",
        default=None,
        metavar="LEVEL",
        help="logging level (debug/info/warning/error; default: "
        "$REPRO_LOG_LEVEL or warning) — one shared formatter with "
        "timestamp, level, logger and worker id",
    )


def _setup_logging(level=None, worker_id=None) -> None:
    """Install the shared formatter; bad level names exit like argparse."""
    from repro.obs.logconfig import setup_logging

    try:
        setup_logging(level, worker_id=worker_id)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        raise SystemExit(2)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "scenario":
        _setup_logging()
        return _scenario_main(argv[1:])
    if argv and argv[0] == "bench":
        _setup_logging()
        return _bench_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "worker":
        return _worker_main(argv[1:])
    if argv and argv[0] == "fleet":
        return _fleet_main(argv[1:])
    if argv and argv[0] == "docs":
        return _docs_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the figures and tables of the IPDPS 2006 paper "
        "(see `python -m repro scenario --help` for the scenario catalog and "
        "`python -m repro bench --help` for the backend benchmark harness).",
    )
    parser.add_argument(
        "artefact",
        nargs="?",
        choices=sorted(_ARTEFACTS) + ["all"],
        help="which figure/table to regenerate (omit for a quick summary)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use reduced realisation counts (for a fast look)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the artefact's default root seed (reproducible)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="Monte-Carlo process pool size where the artefact supports it",
    )
    args = parser.parse_args(argv)

    if args.artefact is None:
        print(_summary())
        return 0

    names = sorted(_ARTEFACTS) if args.artefact == "all" else [args.artefact]
    mode = "quick" if args.quick else "full"
    for name in names:
        started = time.perf_counter()
        result = _ARTEFACTS[name][mode](seed=args.seed, workers=args.workers)
        _print_result(result, mode, time.perf_counter() - started, name=name)
    return 0


if __name__ == "__main__":
    sys.exit(main())
