"""Tests for the ``python -m repro`` command-line entry point."""

import pytest

from repro.__main__ import _ARTEFACTS, main


class TestCLI:
    def test_summary_without_arguments(self, capsys):
        assert main([]) == 0
        output = capsys.readouterr().out
        assert "0.35" in output
        assert "IPDPS 2006" in output

    def test_artefact_registry_covers_every_figure_and_table(self):
        assert set(_ARTEFACTS) == {
            "fig1", "fig2", "fig3", "fig4", "fig5", "table1", "table2", "table3",
        }
        for modes in _ARTEFACTS.values():
            assert set(modes) == {"full", "quick"}

    def test_quick_fig4_run(self, capsys):
        assert main(["fig4", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "fig4" in output
        assert "completion times" in output

    def test_quick_fig2_run(self, capsys):
        assert main(["fig2", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "Fig. 2" in output

    def test_unknown_artefact_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig9"])
