"""Property tests for the adaptive shard planner: exact block coverage,
size bounds, cost monotonicity and seed-stream invariance — plus the
engine-level guarantee that adaptive sizing never changes the merged
statistics."""

import numpy as np
import pytest

from repro.distributed.plan import (
    DEFAULT_OVERSUBSCRIPTION,
    adaptive_shard_count,
    block_seed,
    plan_blocks,
    plan_shards,
)


def _cases():
    rng = np.random.default_rng(20260808)
    for _ in range(200):
        num_blocks = int(rng.integers(1, 400))
        slots = int(rng.integers(1, 33))
        block_seconds = float(rng.uniform(1e-4, 2.0))
        round_trip = float(rng.uniform(1e-4, 1.0))
        yield num_blocks, slots, block_seconds, round_trip


class TestAdaptiveShardCount:
    def test_count_always_within_bounds(self):
        for num_blocks, slots, block_seconds, round_trip in _cases():
            count = adaptive_shard_count(
                num_blocks, slots, block_seconds, round_trip
            )
            assert 1 <= count <= num_blocks
            # Amortization yields to parallelism: never idle a slot that
            # could hold a block.
            assert count >= min(slots, num_blocks)

    def test_without_cost_estimates_targets_oversubscription(self):
        assert adaptive_shard_count(1000, 4) == 4 * DEFAULT_OVERSUBSCRIPTION
        assert adaptive_shard_count(3, 8) == 3  # capped at the block count

    def test_monotone_in_round_trip_cost(self):
        # Costlier dispatches can only push the planner toward fewer,
        # larger shards — never more of them.
        for num_blocks, slots, block_seconds, _ in _cases():
            counts = [
                adaptive_shard_count(num_blocks, slots, block_seconds, rt)
                for rt in (1e-4, 1e-3, 1e-2, 1e-1, 1.0)
            ]
            assert counts == sorted(counts, reverse=True)

    def test_amortization_caps_chatty_dispatch(self):
        # 100 blocks × 1ms compute against a 50ms round-trip: the cap
        # (0.1s / (20 × 0.05s) = 0) floors at min(slots, blocks).
        assert adaptive_shard_count(100, 2, 0.001, 0.05) == 2
        # Same workload, negligible overhead: parallelism target wins.
        assert adaptive_shard_count(100, 2, 0.001, 1e-6) == 8

    def test_zero_blocks_is_one_shard(self):
        assert adaptive_shard_count(0, 4) == 1

    def test_rejects_malformed_inputs(self):
        with pytest.raises(ValueError):
            adaptive_shard_count(-1, 2)
        with pytest.raises(ValueError):
            adaptive_shard_count(10, 0)
        with pytest.raises(ValueError):
            adaptive_shard_count(10, 2, amortization=0)
        with pytest.raises(ValueError):
            adaptive_shard_count(10, 2, oversubscription=0)


class TestPlanShardsUnderSizing:
    def test_every_block_covered_exactly_once(self):
        for num_blocks, slots, block_seconds, round_trip in _cases():
            blocks = plan_blocks(num_blocks * 10, 10)
            count = adaptive_shard_count(
                num_blocks, slots, block_seconds, round_trip
            )
            shards = plan_shards(blocks, count)
            covered = [b.index for shard in shards for b in shard.blocks]
            assert sorted(covered) == list(range(num_blocks))
            assert len(covered) == len(set(covered))

    def test_shard_sizes_differ_by_at_most_one(self):
        for num_blocks, slots, block_seconds, round_trip in _cases():
            blocks = plan_blocks(num_blocks * 10, 10)
            count = adaptive_shard_count(
                num_blocks, slots, block_seconds, round_trip
            )
            sizes = [len(s.blocks) for s in plan_shards(blocks, count)]
            assert max(sizes) - min(sizes) <= 1

    def test_start_index_keeps_probe_and_main_waves_disjoint(self):
        blocks = plan_blocks(120, 10)
        probe = plan_shards(blocks[:3], 3)
        main = plan_shards(blocks[3:], 4, start_index=len(probe))
        indices = [s.index for s in probe] + [s.index for s in main]
        assert indices == list(range(len(indices)))
        with pytest.raises(ValueError):
            plan_shards(blocks, 2, start_index=-1)

    def test_block_seed_streams_invariant_under_regrouping(self):
        # The whole bit-identity argument: a block's seed stream depends
        # on the master seed and block index alone, so any shard count
        # (probe waves included) replays identical randomness.
        blocks = plan_blocks(80, 10)
        for count in (1, 3, 8):
            shards = plan_shards(blocks, count)
            for shard in shards:
                for block in shard.blocks:
                    direct = block_seed(777, block.index)
                    assert direct.entropy == block_seed(777, block.index).entropy
                    assert direct.spawn_key[-1] == block.index
                    grouped_draw = np.random.default_rng(
                        block_seed(777, block.index)
                    ).random(4)
                    reference_draw = np.random.default_rng(
                        block_seed(777, block.index)
                    ).random(4)
                    assert np.array_equal(grouped_draw, reference_draw)


class TestEngineAdaptiveEquivalence:
    @pytest.fixture
    def request_kwargs(self, fast_params):
        from repro.core.policies.lbp1 import LBP1

        return dict(
            params=fast_params,
            policy=LBP1(gain=0.5),
            workload=(30, 30),
            seed=4242,
            num_realisations=48,
            block_size=6,
        )

    def test_adaptive_equals_fixed_equals_serial(self, request_kwargs):
        from repro.montecarlo.engine import EngineRequest, run_engine

        adaptive = run_engine(EngineRequest(**request_kwargs))
        for shards in (1, 2, 7):
            fixed = run_engine(
                EngineRequest(**request_kwargs, shards=shards, refresh=True)
            )
            assert fixed.stats.mean == adaptive.stats.mean
            assert fixed.stats.variance == adaptive.stats.variance
            assert np.array_equal(
                fixed.estimate.completion_times,
                adaptive.estimate.completion_times,
            )

    def test_sizing_provenance_is_recorded(self, request_kwargs):
        from repro.montecarlo.engine import EngineRequest, run_engine

        report = run_engine(EngineRequest(**request_kwargs))
        # Inline executor, 8 blocks, no cache: a single-block probe wave
        # calibrates compute and round-trip cost, then the main wave runs.
        assert report.sizing["slots"] == 1.0
        assert report.sizing["probe_shards"] == 1.0
        assert report.sizing["main_shards"] >= 1.0
        assert report.sizing["block_seconds"] > 0.0
        assert report.shards_dispatched == int(
            report.sizing["probe_shards"] + report.sizing["main_shards"]
        )
        fixed = run_engine(EngineRequest(**request_kwargs, shards=4, refresh=True))
        assert fixed.sizing == {}
        assert fixed.shards_dispatched == 4

    def test_cached_wall_seconds_calibrate_without_a_probe(
        self, request_kwargs, tmp_path
    ):
        from repro.distributed.store import ShardStore
        from repro.montecarlo.engine import EngineRequest, run_engine

        store = ShardStore(tmp_path / "store")
        first = run_engine(EngineRequest(**request_kwargs, store=store))
        grown = dict(request_kwargs, num_realisations=96)
        second = run_engine(EngineRequest(**grown, store=store))
        # The grown run re-sizes its delta from the stored per-block costs:
        # no probe wave, calibration straight from the cache.
        assert second.blocks_cached == first.blocks_total
        assert second.sizing["probe_shards"] == 0.0
        assert second.sizing["block_seconds"] > 0.0
        serial = run_engine(EngineRequest(**grown, shards=1, refresh=True))
        assert serial.stats.mean == second.stats.mean
