"""Reproducible random-number stream management.

Every stochastic component of the model (per-node service process, per-node
failure/recovery process, the transfer channel, the workload generator, ...)
draws from its *own* named stream.  Streams are spawned from a single root
seed with :class:`numpy.random.SeedSequence`, so

* a simulation is fully reproducible from one integer seed,
* changing the number of draws made by one component does not perturb the
  variates seen by any other component (common random numbers across policy
  comparisons), and
* Monte-Carlo realisations can be distributed over processes without stream
  overlap.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.SeedSequence]


class RandomStreams:
    """A collection of independent, named random-number generators.

    Parameters
    ----------
    seed:
        Root seed (``None`` draws entropy from the OS).

    Examples
    --------
    >>> streams = RandomStreams(42)
    >>> service = streams.stream("node-0.service")
    >>> failure = streams.stream("node-0.failure")
    >>> service is streams.stream("node-0.service")
    True
    """

    def __init__(self, seed: SeedLike = None) -> None:
        if isinstance(seed, np.random.SeedSequence):
            self._root = seed
        else:
            self._root = np.random.SeedSequence(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed_sequence(self) -> np.random.SeedSequence:
        """The root seed sequence; spawning from it advances this collection."""
        return self._root

    @property
    def root_entropy(self) -> tuple:
        """Entropy of the root seed sequence (for logging/reproduction)."""
        entropy = self._root.entropy
        if isinstance(entropy, (list, tuple)):
            return tuple(entropy)
        return (entropy,)

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The generator for a given ``(root seed, name)`` pair is always the
        same, regardless of the order in which streams are requested.
        """
        if name not in self._streams:
            # Derive a child seed from the root seed sequence and a stable
            # hash of the stream name so that creation order is irrelevant.
            # The root's own spawn_key is preserved: streams spawned from
            # different Monte-Carlo children stay independent even though
            # they share the same entropy.
            digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            key = int(digest.sum()) * 1_000_003 + len(name) * 7_919
            per_name = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=tuple(self._root.spawn_key) + (hash_name(name), key),
            )
            self._streams[name] = np.random.default_rng(per_name)
        return self._streams[name]

    def spawn(self, count: int) -> List["RandomStreams"]:
        """Spawn ``count`` independent child collections (for MC workers)."""
        return [RandomStreams(seq) for seq in self._root.spawn(count)]

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __iter__(self) -> Iterator[str]:
        return iter(self._streams)

    def __len__(self) -> int:
        return len(self._streams)

    def names(self) -> Iterable[str]:
        """Names of the streams created so far."""
        return tuple(self._streams)


def hash_name(name: str) -> int:
    """Stable (process-independent) 32-bit hash of a stream name.

    Python's built-in ``hash`` for strings is salted per process, which would
    break reproducibility across runs, so a small FNV-1a implementation is
    used instead.
    """
    value = 2166136261
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 16777619) & 0xFFFFFFFF
    return value


def spawn_seeds(seed: SeedLike, count: int) -> List[np.random.SeedSequence]:
    """Spawn ``count`` independent seed sequences from ``seed``."""
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return root.spawn(count)
