"""Tests for exponential fitting and goodness of fit."""

import numpy as np
import pytest

from repro.analysis.fitting import fit_exponential


class TestFitExponential:
    def test_recovers_rate(self, rng):
        samples = rng.exponential(1.0 / 1.86, size=20_000)
        fit = fit_exponential(samples)
        assert fit.rate == pytest.approx(1.86, rel=0.03)
        assert fit.mean == pytest.approx(1.0 / 1.86, rel=0.03)
        assert fit.n_samples == 20_000

    def test_exponential_data_accepted_by_ks(self, rng):
        fit = fit_exponential(rng.exponential(0.5, size=2000))
        assert fit.acceptable
        assert fit.ks_pvalue > 0.01

    def test_clearly_non_exponential_data_rejected_by_ks(self, rng):
        fit = fit_exponential(rng.uniform(0.9, 1.1, size=2000))
        assert not fit.acceptable

    def test_pdf_and_cdf_shapes(self, rng):
        fit = fit_exponential(rng.exponential(1.0, size=500))
        xs = np.linspace(0, 5, 50)
        pdf = fit.pdf(xs)
        cdf = fit.cdf(xs)
        assert pdf[0] == pytest.approx(fit.rate, rel=1e-9)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[0] == pytest.approx(0.0)
        assert fit.pdf([-1.0])[0] == 0.0
        assert fit.cdf([-1.0])[0] == 0.0

    def test_log_likelihood_prefers_true_rate(self, rng):
        samples = rng.exponential(1.0, size=5000)
        fit = fit_exponential(samples)
        # Likelihood at the MLE beats the likelihood at a wrong rate.
        wrong_rate = fit.rate * 3
        wrong_ll = len(samples) * np.log(wrong_rate) - wrong_rate * samples.sum()
        assert fit.log_likelihood > wrong_ll

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_exponential([])
        with pytest.raises(ValueError):
            fit_exponential([-1.0, 1.0])
        with pytest.raises(ValueError):
            fit_exponential([0.0, 0.0])
