"""Observability: process-local metrics and span tracing (stdlib-only).

The package must stay importable on the service's numpy-free request
path, so it depends on nothing outside the standard library.  Names are
re-exported lazily per the repo-wide PEP 562 discipline.
"""

from repro._lazy import lazy_exports

_EXPORTS = {
    "repro.obs.metrics": (
        "DEFAULT_BUCKETS",
        "MetricFamily",
        "MetricsRegistry",
        "REGISTRY",
        "get_registry",
        "histogram_quantile",
    ),
    "repro.obs.history": (
        "HISTORY_SCHEMA_VERSION",
        "RunLedger",
        "default_history_root",
        "default_ledger",
        "history_enabled",
        "record_backend_report",
        "record_distributed_report",
        "record_engine_run",
    ),
    "repro.obs.sentinel": (
        "CheckResult",
        "SentinelReport",
        "evaluate",
        "export_verdicts",
    ),
    "repro.obs.trace": (
        "Span",
        "TRACE_SCHEMA_VERSION",
        "Tracer",
        "current_tracer",
        "record",
        "span",
    ),
    "repro.obs.propagate": (
        "TRACE_CTX_VERSION",
        "child_capture",
        "clock_offset",
        "export_subtree",
        "make_context",
        "stitch_subtree",
        "subtree_totals",
    ),
    "repro.obs.fleet": (
        "FleetAggregator",
        "relabel_snapshot",
        "render_fleet_table",
    ),
    "repro.obs.logconfig": (
        "setup_logging",
    ),
}

__getattr__, __dir__, __all__ = lazy_exports(__name__, _EXPORTS)
