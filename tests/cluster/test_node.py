"""Tests for the compute-element service process and failure preemption."""

import numpy as np
import pytest

from repro.cluster.node import ComputeElement, NodeState
from repro.cluster.task import Task, TaskState
from repro.core.parameters import NodeParameters
from repro.sim.engine import Environment


def make_node(env, rng, service_rate=1.0, failure_rate=0.0, recovery_rate=0.0,
              preemption="resume", provider=None, completed=None):
    params = NodeParameters(
        service_rate=service_rate, failure_rate=failure_rate, recovery_rate=recovery_rate
    )
    return ComputeElement(
        env=env,
        index=0,
        params=params,
        rng=rng,
        preemption=preemption,
        on_task_completed=completed,
        service_time_provider=provider,
    )


def make_tasks(count, origin=0):
    return [Task(task_id=i, origin=origin) for i in range(count)]


class TestConstruction:
    def test_invalid_preemption_mode_rejected(self, env, rng):
        with pytest.raises(ValueError):
            make_node(env, rng, preemption="abort")

    def test_initial_state_up(self, env, rng):
        node = make_node(env, rng)
        assert node.is_up
        assert node.state is NodeState.UP
        assert node.queue_length == 0

    def test_initially_down_node(self, env, rng):
        params = NodeParameters(service_rate=1.0, recovery_rate=0.5, initially_up=False)
        node = ComputeElement(env, 0, params, rng)
        assert not node.is_up


class TestServiceProcess:
    def test_processes_all_tasks(self, env, rng):
        done = []
        node = make_node(env, rng, service_rate=2.0,
                         completed=lambda n, t: done.append(t.task_id))
        node.assign_initial(make_tasks(5))
        env.run()
        assert sorted(done) == [0, 1, 2, 3, 4]
        assert node.tasks_completed == 5
        assert node.queue_length == 0

    def test_fifo_service_order(self, env, rng):
        done = []
        node = make_node(env, rng, completed=lambda n, t: done.append(t.task_id))
        node.assign_initial(make_tasks(4))
        env.run()
        assert done == [0, 1, 2, 3]

    def test_deterministic_provider_gives_exact_makespan(self, env, rng):
        node = make_node(env, rng, provider=lambda task: 2.0)
        node.assign_initial(make_tasks(3))
        env.run()
        assert env.now == pytest.approx(6.0)

    def test_tasks_received_later_are_processed(self, env, rng):
        node = make_node(env, rng, provider=lambda task: 1.0)
        node.assign_initial(make_tasks(1))

        def feeder(env, node):
            yield env.timeout(5.0)
            extra = Task(task_id=99, origin=1)
            extra.mark_in_transit()
            node.receive([extra])

        env.process(feeder(env, node))
        env.run()
        assert node.tasks_completed == 2
        assert env.now == pytest.approx(6.0)

    def test_busy_time_accumulates(self, env, rng):
        node = make_node(env, rng, provider=lambda task: 1.5)
        node.assign_initial(make_tasks(2))
        env.run()
        assert node.busy_time == pytest.approx(3.0)

    def test_mean_service_time_statistics(self, env, rng):
        node = make_node(env, rng, service_rate=2.0)
        node.assign_initial(make_tasks(1000))
        env.run()
        # 1000 exponential(rate 2) tasks -> makespan close to 500.
        assert env.now == pytest.approx(500.0, rel=0.1)


class TestTakeTasks:
    def test_takes_from_the_tail(self, env, rng):
        node = make_node(env, rng)
        node.assign_initial(make_tasks(5))
        taken = node.take_tasks(2)
        assert [t.task_id for t in taken] == [4, 3]
        assert node.queue_length == 3

    def test_never_takes_more_than_waiting(self, env, rng):
        node = make_node(env, rng)
        node.assign_initial(make_tasks(3))
        assert len(node.take_tasks(10)) == 3
        assert node.queue_length == 0

    def test_take_zero_returns_empty(self, env, rng):
        node = make_node(env, rng)
        node.assign_initial(make_tasks(3))
        assert node.take_tasks(0) == []

    def test_negative_count_rejected(self, env, rng):
        node = make_node(env, rng)
        with pytest.raises(ValueError):
            node.take_tasks(-1)

    def test_in_service_task_is_not_taken(self, env, rng):
        node = make_node(env, rng, provider=lambda task: 10.0)
        node.assign_initial(make_tasks(3))
        env.run(until=1.0)  # first task now in service
        taken = node.take_tasks(10)
        assert len(taken) == 2
        assert node.queue_length == 1  # the in-service task remains


class TestFailureRecovery:
    def test_fail_sets_state_down(self, env, rng):
        node = make_node(env, rng, failure_rate=0.1, recovery_rate=0.1)
        node.fail()
        assert not node.is_up
        assert node.failures == 1

    def test_double_fail_rejected(self, env, rng):
        node = make_node(env, rng, failure_rate=0.1, recovery_rate=0.1)
        node.fail()
        with pytest.raises(RuntimeError):
            node.fail()

    def test_recover_requires_down(self, env, rng):
        node = make_node(env, rng, failure_rate=0.1, recovery_rate=0.1)
        with pytest.raises(RuntimeError):
            node.recover()

    def test_no_processing_while_down(self, env, rng):
        node = make_node(env, rng, failure_rate=0.001, recovery_rate=0.001,
                         provider=lambda task: 1.0)
        node.assign_initial(make_tasks(3))

        def controller(env, node):
            yield env.timeout(0.5)
            node.fail()
            yield env.timeout(10.0)
            node.recover()

        env.process(controller(env, node))
        env.run()
        # 0.5 of work done, then a 10 s outage, then 2.5 of work remaining
        # (the preempted task resumes its residual 0.5).
        assert env.now == pytest.approx(13.0)
        assert node.tasks_completed == 3

    def test_restart_semantics_redraws_service_time(self, env, rng):
        calls = []

        def provider(task):
            calls.append(task.task_id)
            return 1.0

        node = make_node(env, rng, failure_rate=0.001, recovery_rate=0.001,
                         preemption="restart", provider=provider)
        node.assign_initial(make_tasks(1))

        def controller(env, node):
            yield env.timeout(0.5)
            node.fail()
            yield env.timeout(2.0)
            node.recover()

        env.process(controller(env, node))
        env.run()
        # The provider is consulted twice: once initially, once after restart.
        assert calls == [0, 0]
        assert env.now == pytest.approx(3.5)

    def test_failure_while_idle_is_harmless(self, env, rng):
        node = make_node(env, rng, failure_rate=0.001, recovery_rate=0.001,
                         provider=lambda task: 1.0)

        def controller(env, node):
            yield env.timeout(1.0)
            node.fail()
            yield env.timeout(1.0)
            node.recover()
            task = Task(task_id=0, origin=1)
            task.mark_in_transit()
            node.receive([task])

        env.process(controller(env, node))
        env.run()
        assert node.tasks_completed == 1
        assert env.now == pytest.approx(3.0)

    def test_tasks_received_while_down_wait_for_recovery(self, env, rng):
        node = make_node(env, rng, failure_rate=0.001, recovery_rate=0.001,
                         provider=lambda task: 1.0)

        def controller(env, node):
            yield env.timeout(0.0)
            node.fail()
            task = Task(task_id=0, origin=1)
            task.mark_in_transit()
            node.receive([task])
            yield env.timeout(4.0)
            node.recover()

        env.process(controller(env, node))
        env.run()
        assert node.tasks_completed == 1
        assert env.now == pytest.approx(5.0)

    def test_queue_change_callback_fires(self, env, rng):
        changes = []
        params = NodeParameters(service_rate=1.0)
        node = ComputeElement(env, 0, params, rng,
                              on_queue_change=lambda n: changes.append(n.queue_length),
                              service_time_provider=lambda task: 1.0)
        node.assign_initial(make_tasks(2))
        env.run()
        assert changes[0] == 2          # initial assignment
        assert changes[-1] == 0         # last completion
