"""Common protocol and data types shared by all load-balancing policies."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.parameters import SystemParameters, validate_workload


@dataclass(frozen=True)
class Transfer:
    """A (requested) transfer of ``num_tasks`` tasks from ``source`` to ``destination``.

    A policy *requests* transfers; the executing system (simulator or
    test-bed) caps the number of tasks actually moved by the number of
    unprocessed tasks available in the source queue at execution time.
    """

    source: int
    destination: int
    num_tasks: int

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ValueError("a transfer cannot have the same source and destination")
        if self.source < 0 or self.destination < 0:
            raise ValueError("node indices must be non-negative")
        if self.num_tasks < 0:
            raise ValueError(f"num_tasks must be >= 0, got {self.num_tasks!r}")

    @property
    def is_empty(self) -> bool:
        """Whether this transfer moves no tasks at all."""
        return self.num_tasks == 0


class LoadBalancingPolicy(ABC):
    """Abstract interface of a load-balancing policy.

    A policy is consulted at two kinds of instants:

    * once at ``t = 0`` (:meth:`initial_transfers`), mirroring the joint
      scheduling action both paper policies take at the start of execution;
    * at every node-failure instant (:meth:`on_failure`), which only LBP-2
      (and the :class:`SendAllOnFailure` baseline) uses.

    Policies are pure decision functions: they never mutate system state and
    are therefore trivially shareable across Monte-Carlo realisations.
    """

    #: Human-readable policy name used in reports and benchmark tables.
    name: str = "policy"

    @abstractmethod
    def initial_transfers(
        self, workload: Sequence[int], params: SystemParameters
    ) -> List[Transfer]:
        """Transfers to perform at ``t = 0`` for the given initial workload."""

    def on_failure(
        self,
        failed_node: int,
        queue_sizes: Sequence[int],
        params: SystemParameters,
        time: float = 0.0,
    ) -> List[Transfer]:
        """Transfers to perform at a failure instant of ``failed_node``.

        The default implementation takes no action (LBP-1 and the one-shot
        baselines); reactive policies override it.
        """
        del failed_node, queue_sizes, params, time
        return []

    def on_recovery(
        self,
        recovered_node: int,
        queue_sizes: Sequence[int],
        params: SystemParameters,
        time: float = 0.0,
    ) -> List[Transfer]:
        """Transfers to perform when ``recovered_node`` comes back up.

        Neither of the paper's policies reacts to recoveries; the hook exists
        for extensions.
        """
        del recovered_node, queue_sizes, params, time
        return []

    # -- shared helpers ------------------------------------------------------

    @staticmethod
    def _validated(workload: Sequence[int], params: SystemParameters) -> tuple:
        return validate_workload(workload, params)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} {self.name!r}>"
