"""Tests for the no-failure special case."""

import numpy as np
import pytest

from repro.core.completion_time import CompletionTimeSolver
from repro.core.nofailure import (
    expected_completion_time_no_failure,
    lbp1_no_failure_prediction,
    no_failure_solver,
)
from repro.core.parameters import NodeParameters, SystemParameters, TransferDelayModel


class TestNoFailureSolver:
    def test_solver_has_failures_switched_off(self, paper_params):
        solver = no_failure_solver(paper_params)
        assert solver.params.failure_rates == (0.0, 0.0)

    def test_matches_explicitly_clean_parameters(self, paper_params, no_failure_params):
        via_helper = expected_completion_time_no_failure(paper_params, (100, 60), 0.45)
        direct = CompletionTimeSolver(no_failure_params).lbp1((100, 60), 0.45).mean
        assert via_helper == pytest.approx(direct)

    def test_no_failure_mean_below_failure_mean(self, paper_params):
        clean = expected_completion_time_no_failure(paper_params, (100, 60), 0.45)
        with_failures = CompletionTimeSolver(paper_params).lbp1((100, 60), 0.45).mean
        assert clean < with_failures

    def test_zero_delay_zero_gain_is_slowest_node_drain_time(self):
        params = SystemParameters(
            nodes=(NodeParameters(1.0), NodeParameters(2.0)),
            delay=TransferDelayModel(0.0),
        )
        # No transfer: node 0 alone needs on average 30 s, node 1 needs 5 s;
        # the overall completion time is dominated by node 0 but not exactly
        # equal to 30 (maximum of two random variables).
        mean = expected_completion_time_no_failure(params, (30, 10), 0.0)
        assert mean >= 30.0
        assert mean < 31.5

    def test_prediction_object_reports_configuration(self, paper_params):
        prediction = lbp1_no_failure_prediction(paper_params, (100, 60), 0.45,
                                                sender=0, receiver=1)
        assert prediction.gain == 0.45
        assert prediction.batch_size == 45
        assert prediction.sender == 0

    def test_paper_no_failure_reference_value(self, paper_params):
        """Table 1 lists 141.94 s for (200, 200) without failure (optimal K).

        Our no-failure optimum for that workload must land in the same
        region (the optimal gain differs slightly on a 0.05 grid).
        """
        gains = np.round(np.arange(0.0, 1.0001, 0.05), 2)
        solver = no_failure_solver(paper_params)
        means = solver.gain_sweep((200, 200), gains, sender=0, receiver=1)
        assert means.min() == pytest.approx(141.94, rel=0.05)
