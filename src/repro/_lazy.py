"""PEP 562 lazy re-exports, shared by the package ``__init__`` modules.

Several packages (:mod:`repro`, :mod:`repro.scenarios`,
:mod:`repro.backends`, :mod:`repro.service`) re-export their public names
lazily so that importing the package costs nothing until a name is actually
used — the discipline that keeps cache-hit CLI runs and the results
service's request path free of numpy/scipy.  The ``__getattr__``/``__dir__``
machinery is identical everywhere, so it is built once here:

    _EXPORTS = {"repro.foo.bar": ("Baz", "qux"), ...}
    __getattr__, __dir__, __all__ = lazy_exports(__name__, _EXPORTS)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple


def lazy_exports(
    package: str,
    exports: Dict[str, Sequence[str]],
    extra_all: Sequence[str] = (),
) -> Tuple[Callable, Callable, List[str]]:
    """Build ``(__getattr__, __dir__, __all__)`` for a lazy package.

    ``exports`` maps module paths to the names re-exported from them;
    ``extra_all`` adds names that live in the package itself (e.g. a
    ``__version__`` imported eagerly) to ``__all__``.
    """
    name_to_module = {
        name: module for module, names in exports.items() for name in names
    }
    all_names = sorted(set(name_to_module) | set(extra_all))

    import sys

    def __getattr__(name: str):
        module_name = name_to_module.get(name)
        if module_name is None:
            raise AttributeError(
                f"module {package!r} has no attribute {name!r}"
            )
        import importlib

        value = getattr(importlib.import_module(module_name), name)
        setattr(sys.modules[package], name, value)
        return value

    def __dir__():
        return sorted(set(vars(sys.modules[package])) | set(all_names))

    return __getattr__, __dir__, all_names
