"""Tests for time-series and tally monitors."""

import numpy as np
import pytest

from repro.sim.monitor import TallyMonitor, TimeSeriesMonitor


class TestTimeSeriesMonitor:
    def test_record_and_read_back(self):
        monitor = TimeSeriesMonitor("queue")
        monitor.record(0.0, 5)
        monitor.record(1.0, 4)
        times, values = monitor.as_arrays()
        assert list(times) == [0.0, 1.0]
        assert list(values) == [5.0, 4.0]

    def test_out_of_order_recording_rejected(self):
        monitor = TimeSeriesMonitor()
        monitor.record(2.0, 1)
        with pytest.raises(ValueError):
            monitor.record(1.0, 2)

    def test_same_time_recordings_allowed(self):
        monitor = TimeSeriesMonitor()
        monitor.record(1.0, 1)
        monitor.record(1.0, 2)
        assert len(monitor) == 2

    def test_value_at_is_right_continuous(self):
        monitor = TimeSeriesMonitor()
        monitor.record(0.0, 10)
        monitor.record(5.0, 7)
        assert monitor.value_at(0.0) == 10
        assert monitor.value_at(4.999) == 10
        assert monitor.value_at(5.0) == 7
        assert monitor.value_at(100.0) == 7

    def test_value_at_before_first_observation_rejected(self):
        monitor = TimeSeriesMonitor()
        monitor.record(1.0, 3)
        with pytest.raises(ValueError):
            monitor.value_at(0.5)

    def test_value_at_empty_monitor_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesMonitor().value_at(0.0)

    def test_sample_on_grid(self):
        monitor = TimeSeriesMonitor()
        monitor.record(0.0, 2)
        monitor.record(2.0, 5)
        grid_values = monitor.sample_on_grid([0.0, 1.0, 2.0, 3.0])
        assert list(grid_values) == [2.0, 2.0, 5.0, 5.0]

    def test_time_average_piecewise_constant(self):
        monitor = TimeSeriesMonitor()
        monitor.record(0.0, 10)
        monitor.record(5.0, 0)
        monitor.record(10.0, 0)
        # 10 for 5 units then 0 for 5 units -> average 5.
        assert monitor.time_average() == pytest.approx(5.0)

    def test_time_average_with_explicit_until(self):
        monitor = TimeSeriesMonitor()
        monitor.record(0.0, 4)
        monitor.record(2.0, 0)
        assert monitor.time_average(until=4.0) == pytest.approx(2.0)

    def test_time_average_single_point(self):
        monitor = TimeSeriesMonitor()
        monitor.record(0.0, 3)
        assert monitor.time_average() == pytest.approx(3.0)


class TestTallyMonitor:
    def test_mean_std_min_max(self):
        tally = TallyMonitor()
        tally.extend([1.0, 2.0, 3.0, 4.0])
        assert tally.mean == pytest.approx(2.5)
        assert tally.min == 1.0
        assert tally.max == 4.0
        assert tally.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_rejects_non_finite(self):
        tally = TallyMonitor()
        with pytest.raises(ValueError):
            tally.record(float("nan"))
        with pytest.raises(ValueError):
            tally.record(float("inf"))

    def test_empty_monitor_statistics_rejected(self):
        tally = TallyMonitor()
        with pytest.raises(ValueError):
            _ = tally.mean
        with pytest.raises(ValueError):
            _ = tally.std
        with pytest.raises(ValueError):
            tally.standard_error()

    def test_single_observation_has_zero_std(self):
        tally = TallyMonitor()
        tally.record(5.0)
        assert tally.std == 0.0

    def test_confidence_interval_contains_mean(self):
        tally = TallyMonitor()
        tally.extend(np.random.default_rng(0).normal(10.0, 2.0, size=200))
        low, high = tally.confidence_interval(0.95)
        assert low < tally.mean < high

    def test_confidence_interval_level_validated(self):
        tally = TallyMonitor()
        tally.record(1.0)
        with pytest.raises(ValueError):
            tally.confidence_interval(1.5)

    def test_len_counts_observations(self):
        tally = TallyMonitor()
        tally.extend([1.0, 2.0])
        assert len(tally) == 2
        assert list(tally.values) == [1.0, 2.0]
