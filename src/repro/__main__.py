"""Command-line entry point: regenerate the paper's evaluation from a shell.

Usage::

    python -m repro                      # quick summary (headline numbers)
    python -m repro fig3                 # regenerate one artefact
    python -m repro all                  # regenerate every figure and table
    python -m repro fig3 --quick         # reduced realisation counts
    python -m repro fig3 --seed 7        # reproducible alternate seed
    python -m repro table3 --workers 4   # parallel Monte-Carlo

    python -m repro scenario list                 # catalog + families
    python -m repro scenario run fig3 --quick     # cached scenario run
    python -m repro scenario sweep delay-sweep    # expand + run a family
    python -m repro scenario compare smoke churn/paper
    python -m repro scenario run smoke --backend vectorized

    python -m repro bench --quick                 # time the backends,
                                                  # write BENCH_results.json
    python -m repro bench --distributed --quick   # shard-scaling curve,
                                                  # write BENCH_distributed.json

    python -m repro scenario sweep gain-sweep --quick --executor process
    python -m repro scenario run smoke --shards 4 # sharded Monte-Carlo
    python -m repro scenario run fig3 --profile   # span-tree timing report
    python -m repro bench --distributed --trace-output trace.ndjson

    python -m repro serve --port 8077             # HTTP results service
    python -m repro worker --connect http://HOST:8077   # join the shard fleet
    python -m repro fleet --connect http://HOST:8077 --watch 2  # fleet table
    python -m repro store migrate                 # v1 block docs -> v2 segments
    python -m repro serve --log-level debug       # shared logging formatter
    python -m repro scenario list --json          # machine-readable catalog

    python -m repro history list                  # recorded runs + trend table
    python -m repro history show <id>             # one record + sentinel verdict
    python -m repro bench --quick --check-regression   # gate on the ledger
    python -m repro trace render trace.ndjson     # replay a saved span tree
    python -m repro docs                          # regenerate docs/scenario-catalog.md
    python -m repro docs --check --check-links    # CI: docs fresh, links valid

The heavy lifting lives in :mod:`repro.experiments`, :mod:`repro.scenarios`,
:mod:`repro.backends`, :mod:`repro.montecarlo.engine` and
:mod:`repro.service`; this module only parses arguments and prints the
rendered tables/series.  Every Monte-Carlo ensemble — serial, pooled,
vectorized or sharded — runs through the one block-planned engine, so
``--workers``/``--shards``/``--executor`` change *where* work runs, never
the result.  Scenario runs are content-addressed: an unchanged scenario is
served from the on-disk cache (``REPRO_CACHE_DIR`` or ``~/.cache/repro``),
and completed seed blocks persist in the shard store for resume and
delta-growth.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional

def _driver(name: str):
    """Resolve an experiment driver at call time (keeps CLI start-up fast)."""
    import repro.experiments as experiments

    return getattr(experiments, name)


def _seeded(seed: Optional[int]) -> dict:
    """Keyword override for drivers when an explicit seed is requested."""
    return {} if seed is None else {"seed": seed}


def _scenario_artefact(name: str, quick: bool, seed: Optional[int], workers: Optional[int]):
    """Run a paper artefact through the scenario registry + cache."""
    from repro.scenarios import Orchestrator

    with Orchestrator(workers=workers) as orchestrator:
        return orchestrator.run(name, quick=quick, seed=seed)


#: artefact name -> (full-size invocation, quick invocation); every entry
#: accepts ``seed``/``workers`` keywords from the command line.  fig3 and
#: table3 are thin consumers of the scenario registry (content-addressed
#: caching included); the remaining artefacts still call their drivers
#: directly.
_ARTEFACTS: Dict[str, Dict[str, Callable[..., object]]] = {
    "fig1": {
        "full": lambda seed=None, workers=None: _driver("run_fig1")(**_seeded(seed)),
        "quick": lambda seed=None, workers=None: _driver("run_fig1")(
            tasks_per_node=500, **_seeded(seed)
        ),
    },
    "fig2": {
        "full": lambda seed=None, workers=None: _driver("run_fig2")(**_seeded(seed)),
        "quick": lambda seed=None, workers=None: _driver("run_fig2")(
            probes_per_size=15, **_seeded(seed)
        ),
    },
    "fig3": {
        "full": lambda seed=None, workers=None: _scenario_artefact(
            "fig3", False, seed, workers
        ),
        "quick": lambda seed=None, workers=None: _scenario_artefact(
            "fig3", True, seed, workers
        ),
    },
    "fig4": {
        "full": lambda seed=None, workers=None: _driver("run_fig4")(**_seeded(seed)),
        # A genuinely reduced configuration: half-size workload, so the
        # traced realisation completes in a fraction of the full run.
        "quick": lambda seed=None, workers=None: _driver("run_fig4")(
            workload=(50, 30), **_seeded(seed)
        ),
    },
    "fig5": {
        "full": lambda seed=None, workers=None: _driver("run_fig5")(
            with_monte_carlo=True, **_seeded(seed)
        ),
        "quick": lambda seed=None, workers=None: _driver("run_fig5")(**_seeded(seed)),
    },
    "table1": {
        "full": lambda seed=None, workers=None: _driver("run_table1")(**_seeded(seed)),
        "quick": lambda seed=None, workers=None: _driver("run_table1")(
            experiment_realisations=5, **_seeded(seed)
        ),
    },
    "table2": {
        "full": lambda seed=None, workers=None: _driver("run_table2")(
            mc_realisations=500, experiment_realisations=60, **_seeded(seed)
        ),
        "quick": lambda seed=None, workers=None: _driver("run_table2")(
            mc_realisations=80, experiment_realisations=10, **_seeded(seed)
        ),
    },
    "table3": {
        "full": lambda seed=None, workers=None: _scenario_artefact(
            "table3", False, seed, workers
        ),
        "quick": lambda seed=None, workers=None: _scenario_artefact(
            "table3", True, seed, workers
        ),
    },
}


def _summary() -> str:
    """Headline reproduction numbers, computed analytically (fast)."""
    from repro.core.optimize import optimal_gain_lbp1, optimal_gain_no_failure
    from repro.core.parameters import paper_parameters

    params = paper_parameters()
    failure = optimal_gain_lbp1(params, (100, 60))
    clean = optimal_gain_no_failure(params, (100, 60))
    lines = [
        "repro — Dhakal et al., IPDPS 2006 (load balancing under node failure/recovery)",
        "",
        f"  optimal LBP-1 gain with failures    : K = {failure.optimal_gain:.2f}"
        f"   (paper: 0.35)",
        f"  optimal LBP-1 gain without failures : K = {clean.optimal_gain:.2f}"
        f"   (paper: 0.45)",
        f"  minimum mean completion time        : {failure.optimal_mean:.1f} s"
        f" (paper: ~117 s)",
        "",
        "Regenerate individual artefacts with, e.g.:",
        "  python -m repro fig3",
        "  python -m repro table3 --quick",
        f"Available artefacts: {', '.join(sorted(_ARTEFACTS))}, all",
        "",
        "Explore the scenario catalog (content-addressed result cache):",
        "  python -m repro scenario list",
        "  python -m repro scenario run fig3 --quick",
        "  python -m repro scenario sweep delay-sweep --quick",
        "",
        "Benchmark the execution backends (reference vs vectorized):",
        "  python -m repro bench --quick",
        "  python -m repro scenario run mc-scaling --backend vectorized",
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# `python -m repro scenario ...` subcommands
# ---------------------------------------------------------------------------


def _print_result(result, mode: str, elapsed: float, name: Optional[str] = None) -> None:
    cached = ", cached" if getattr(result, "from_cache", False) else ""
    name = name if name is not None else result.name
    print(f"=== {name} ({mode}, {elapsed:.1f} s{cached}) ===")
    print(result.render())
    print()


def _scenario_list(as_json: bool = False) -> int:
    if as_json:
        import json

        from repro.scenarios.catalog import catalog_payload

        print(json.dumps(catalog_payload(), indent=2, sort_keys=True))
        return 0

    from repro.scenarios import family_names, get_entry, get_family, scenario_names

    print("Scenarios (run with `python -m repro scenario run <name>`):")
    for name in scenario_names():
        entry = get_entry(name)
        print(f"  {name:<14} {entry.description}")
        print(f"  {'':<14}   hash {entry.spec.content_hash[:12]} "
              f"(quick {entry.quick.content_hash[:12]})")
    print()
    print("Families (run with `python -m repro scenario sweep <family>`):")
    for name in family_names():
        family = get_family(name)
        points = family.expand(quick=False)
        print(f"  {name:<14} {family.description} [{len(points)} points]")
        for point in points:
            print(f"  {'':<14}   {point.name}")
    return 0


def _scenario_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro scenario",
        description="Scenario catalog: list, run, sweep and compare scenarios "
        "with content-addressed result caching.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser("list", help="show the scenario catalog and families")
    list_p.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable catalog (same payload the docs "
        "generator and the results service use)",
    )

    run_p = sub.add_parser("run", help="run one or more named scenarios")
    run_p.add_argument("names", nargs="+", help="scenario names (or family/point)")

    sweep_p = sub.add_parser("sweep", help="expand a scenario family and run it")
    sweep_p.add_argument("family", help="family name (see `scenario list`)")

    compare_p = sub.add_parser("compare", help="tabulate headline numbers")
    compare_p.add_argument("names", nargs="+", help="scenario names to compare")

    for p in (run_p, sweep_p, compare_p):
        p.add_argument("--quick", action="store_true",
                       help="use reduced realisation counts")
        p.add_argument("--seed", type=int, default=None,
                       help="override the scenario's root seed")
        p.add_argument("--workers", type=int, default=None,
                       help="size of the shared Monte-Carlo process pool")
        p.add_argument("--backend", default=None,
                       help="execution backend for Monte-Carlo estimates "
                       "(reference|vectorized; participates in the cache key)")
        p.add_argument("--shards", type=int, default=None,
                       help="run Monte-Carlo kinds sharded with this many "
                       "work items (participates in the cache key; merged "
                       "results are shard-count invariant)")
        p.add_argument("--executor", default=None,
                       choices=["inline", "process"],
                       help="where engine work items run for sharded kinds "
                       "(default: process when --workers is set, else "
                       "inline); does not affect results")
        p.add_argument("--force", action="store_true",
                       help="recompute even if a cached result exists")
        p.add_argument("--no-cache", action="store_true",
                       help="neither read nor write the result cache")
        p.add_argument("--profile", action="store_true",
                       help="trace the run and print a span-tree timing "
                       "report (plan/execute/merge, per-shard) afterwards")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _scenario_list(as_json=args.json)

    import contextlib

    from repro.scenarios import Orchestrator, get_family

    tracer = None
    activation = contextlib.nullcontext()
    if args.profile:
        from repro.obs.trace import Tracer

        tracer = Tracer()
        activation = tracer.activate()

    mode = "quick" if args.quick else "full"
    try:
        with activation, Orchestrator(
            workers=args.workers,
            use_cache=not args.no_cache,
            shard_executor=args.executor,
        ) as orchestrator:
            if args.command == "run":
                for name in args.names:
                    started = time.perf_counter()
                    result = orchestrator.run(
                        name,
                        quick=args.quick,
                        force=args.force,
                        seed=args.seed,
                        backend=args.backend,
                        shards=args.shards,
                    )
                    _print_result(result, mode, time.perf_counter() - started)
            elif args.command == "sweep":
                family = get_family(args.family)
                for spec in family.expand(args.quick):
                    if args.seed is not None:
                        spec = spec.with_(seed=args.seed)
                    started = time.perf_counter()
                    result = orchestrator.run(
                        spec,
                        force=args.force,
                        backend=args.backend,
                        shards=args.shards,
                    )
                    _print_result(result, mode, time.perf_counter() - started)
            else:  # compare
                names = list(args.names)
                if args.seed is not None:
                    from repro.scenarios import resolve

                    names = [
                        resolve(name, quick=args.quick).with_(seed=args.seed)
                        for name in names
                    ]
                print(
                    orchestrator.compare(
                        names,
                        quick=args.quick,
                        force=args.force,
                        backend=args.backend,
                        shards=args.shards,
                    )
                )
    except KeyError as error:
        # Unknown scenario / family names: a clean message, not a traceback.
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    except ValueError as error:
        # Unknown backends / backend-incompatible kinds: same treatment.
        print(f"error: {error}", file=sys.stderr)
        return 2
    if tracer is not None:
        print("=== timing profile ===")
        print(tracer.render_tree())
    return 0


# ---------------------------------------------------------------------------
# `python -m repro bench ...` subcommand
# ---------------------------------------------------------------------------


def _bench_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Time the execution backends against each other, KS-test "
        "statistical parity and write machine-readable BENCH_results.json.",
    )
    parser.add_argument(
        "scenarios",
        nargs="*",
        help="mc_point scenarios to benchmark (default: every benchable "
        "registry point, or the smoke set with --quick)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="benchmark the CI smoke set with quick realisation counts",
    )
    parser.add_argument(
        "--backends",
        default=None,
        help="comma-separated backends to time (default: reference,vectorized)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override every scenario's seed"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="timing repeats per backend (best wall time is kept)",
    )
    parser.add_argument(
        "--alpha",
        type=float,
        default=None,
        help="significance level of the KS parity gate (default 0.01)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the JSON report (default: ./BENCH_results.json, "
        "or ./BENCH_distributed.json with --distributed)",
    )
    parser.add_argument(
        "--distributed",
        action="store_true",
        help="benchmark the sharded runner instead: wall-clock vs process-"
        "pool worker count, written to BENCH_distributed.json",
    )
    parser.add_argument(
        "--worker-counts",
        default=None,
        help="comma-separated pool sizes for --distributed (default: 1,2,4)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for --distributed (default: the scenario's, or "
        "2x the largest worker count)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="with --distributed: compare against this committed baseline "
        "report and fail on determinism drift or throughput regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=10.0,
        help="allowed throughput regression factor vs the baseline "
        "(default 10; merged statistics must always match exactly)",
    )
    parser.add_argument(
        "--trace-output",
        default=None,
        help="with --distributed: also write the span trace of the whole "
        "benchmark (one JSON span per line) to this NDJSON file",
    )
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=None,
        metavar="MIN",
        help="with --distributed: fail unless every multi-worker run beats "
        "MIN x speedup over 1 worker; counts above the machine's effective "
        "CPU budget are loudly skipped, never failed (a 1-CPU container "
        "cannot parallelize, and pretending it can would gate on noise)",
    )
    parser.add_argument(
        "--check-regression",
        action="store_true",
        help="judge this run's records against the run-history ledger "
        "(median ± MAD over comparable prior records; see `repro history`) "
        "and exit non-zero when any check comes back regressed",
    )
    parser.add_argument(
        "--serialization",
        action="store_true",
        help="microbenchmark the binary wire frames against the JSON wire "
        "on representative worker payloads and gate on the size/decode "
        "ratios, written to BENCH_serialization.json",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=120,
        help="with --serialization: interleaved timing rounds per case "
        "(default 120)",
    )
    args = parser.parse_args(argv)

    if args.serialization:
        return _bench_serialization(args)
    if args.distributed:
        return _bench_distributed(args)

    from repro.backends.bench import DEFAULT_ALPHA, DEFAULT_BACKENDS, run_benchmark

    backends = (
        tuple(name.strip() for name in args.backends.split(",") if name.strip())
        if args.backends
        else DEFAULT_BACKENDS
    )
    try:
        report = run_benchmark(
            scenarios=args.scenarios or None,
            backends=backends,
            quick=args.quick,
            seed=args.seed,
            alpha=DEFAULT_ALPHA if args.alpha is None else args.alpha,
            repeats=args.repeats,
        )
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2
    print(report.render())
    path = report.save(args.output or "BENCH_results.json")
    print(f"wrote {path}")
    if not report.all_parity_passed:
        return 1
    if args.check_regression and _sentinel_verdict(report) != 0:
        return 1
    return 0


def _sentinel_verdict(report) -> int:
    """Judge a bench report's fresh ledger records; 1 on any regression.

    The records were appended by the bench harness itself (attached as
    ``report.history_records``), so each is evaluated against *prior*
    comparable records only — its own id is excluded from its baseline.
    ``min_records=1`` lets a single seeded baseline (CI imports the
    committed BENCH artifacts) gate the very next run.
    """
    from repro.obs import sentinel
    from repro.obs.history import default_ledger, history_enabled

    records = [r for r in getattr(report, "history_records", []) if r]
    if not history_enabled() or not records:
        print(
            "regression check: no ledger records for this run "
            "(REPRO_HISTORY=0?) — nothing to judge"
        )
        return 0
    ledger = default_ledger()
    worst = 0
    for record in records:
        verdict = sentinel.evaluate(
            ledger, record, checks=("throughput",), min_records=1
        )
        label = record.get("scenario", "?")
        if record.get("worker_count") is not None:
            label = f"{label} @ {record['worker_count']} workers"
        check = verdict.checks[0]
        line = f"regression check: {label}: {check.status}"
        if check.baseline_median is not None and check.value is not None:
            line += (
                f" ({check.value:.1f} real/s vs baseline median "
                f"{check.baseline_median:.1f}, n={check.baseline_size})"
            )
        elif check.detail:
            line += f" ({check.detail})"
        print(line, file=sys.stderr if verdict.regressed else sys.stdout)
        if verdict.regressed:
            worst = 1
    if worst:
        print(
            "error: throughput regressed against the run-history baseline "
            "(see `repro history list --kind bench`)",
            file=sys.stderr,
        )
    else:
        print("regression check passed")
    return worst


def _bench_serialization(args) -> int:
    """`python -m repro bench --serialization`: frame-vs-JSON wire gate."""
    from repro.backends.bench import (
        run_serialization_benchmark,
        serialization_gate_problems,
    )

    report = run_serialization_benchmark(rounds=args.rounds)
    header = (
        f"{'case':<24} {'json B':>8} {'frame B':>8} {'size':>6} "
        f"{'decode':>7} {'encode':>7}  gate"
    )
    print(header)
    print("-" * len(header))
    for case in report.cases:
        print(
            f"{case.label:<24} {case.json_bytes:>8} {case.frame_bytes:>8} "
            f"{case.size_ratio:>5.2f}x {case.decode_speedup:>6.2f}x "
            f"{case.encode_speedup:>6.2f}x  {'yes' if case.gate else 'no'}"
        )
    path = report.write(args.output or "BENCH_serialization.json")
    print(f"wrote {path}")
    problems = serialization_gate_problems(report)
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    return 1 if problems else 0


def _bench_distributed(args) -> int:
    """`python -m repro bench --distributed`: shard-scaling curve + gate."""
    import json

    from repro.backends.bench import (
        DEFAULT_WORKER_COUNTS,
        compare_distributed_reports,
        run_distributed_benchmark,
    )

    if len(args.scenarios) > 1:
        print("error: --distributed benchmarks one scenario", file=sys.stderr)
        return 2
    worker_counts = (
        tuple(int(c) for c in args.worker_counts.split(",") if c.strip())
        if args.worker_counts
        else DEFAULT_WORKER_COUNTS
    )
    tracer = None
    if args.trace_output:
        from repro.obs.trace import Tracer

        tracer = Tracer()
    try:
        report = run_distributed_benchmark(
            scenario=args.scenarios[0] if args.scenarios else "mc-scaling",
            quick=args.quick,
            worker_counts=worker_counts,
            shards=args.shards,
            seed=args.seed,
            tracer=tracer,
        )
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2
    print(report.render())
    if tracer is not None:
        with open(args.trace_output, "w", encoding="utf-8") as handle:
            handle.write(tracer.to_ndjson())
        print(f"wrote {args.trace_output} ({len(tracer)} spans)")
    path = report.save(args.output or "BENCH_distributed.json")
    print(f"wrote {path}")
    if not report.merge_invariant:
        print(
            "error: merged statistics diverged across worker counts",
            file=sys.stderr,
        )
        return 1
    if args.baseline:
        try:
            baseline = json.loads(open(args.baseline).read())
        except (OSError, ValueError) as error:
            print(f"error: cannot read baseline: {error}", file=sys.stderr)
            return 2
        problems = compare_distributed_reports(
            report.to_dict(), baseline, tolerance=args.tolerance
        )
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(f"baseline gate passed (tolerance {args.tolerance:g}x)")
    if args.require_speedup is not None:
        from repro.backends.bench import (
            effective_cpu_count,
            speedup_gate_problems,
        )

        cpus = effective_cpu_count()
        problems, skipped = speedup_gate_problems(
            report, args.require_speedup, effective_cpus=cpus
        )
        for count in skipped:
            print(
                f"speedup gate: SKIPPED at {count} workers — this machine "
                f"exposes only {cpus} effective CPU(s); run on a multicore "
                f"machine to enforce the gate there"
            )
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        if problems:
            return 1
        enforced = [
            t.worker_count
            for t in report.timings
            if 1 < t.worker_count <= cpus
        ]
        if enforced:
            print(
                f"speedup gate passed (> {args.require_speedup:g}x at "
                f"{', '.join(str(c) for c in enforced)} workers)"
            )
    if args.check_regression and _sentinel_verdict(report) != 0:
        return 1
    return 0


# ---------------------------------------------------------------------------
# `python -m repro serve ...` subcommand
# ---------------------------------------------------------------------------


def _serve_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the scenario results service: an HTTP API for "
        "browsing the catalog, submitting runs/sweeps as background jobs "
        "and fetching content-addressed results (cache hits never touch "
        "the numerical stack).",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8077,
                        help="port to bind; 0 picks a free one (default 8077)")
    parser.add_argument("--workers", type=int, default=None,
                        help="size of the shared Monte-Carlo process pool")
    parser.add_argument("--wire", choices=["auto", "json"], default="auto",
                        help="worker-endpoint encoding: auto negotiates "
                        "binary frames with advertising workers, json pins "
                        "plain JSON (default auto)")
    _add_log_level(parser)
    args = parser.parse_args(argv)
    _setup_logging(args.log_level)

    from repro.service.app import serve

    return serve(
        host=args.host, port=args.port, workers=args.workers, wire=args.wire
    )


# ---------------------------------------------------------------------------
# `python -m repro worker ...` subcommand
# ---------------------------------------------------------------------------


def _worker_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro worker",
        description="Join a results service's shard fleet: pull shard work "
        "items over HTTP, execute them with the local numerical stack and "
        "post partial results back.  Workers may appear, crash and "
        "reconnect at any time — the service's scheduler reassigns lost "
        "shards.",
    )
    parser.add_argument("--connect", required=True,
                        help="base URL of the results service "
                        "(e.g. http://127.0.0.1:8077)")
    parser.add_argument("--name", default=None,
                        help="worker name shown in the fleet view "
                        "(default: hostname-pid)")
    parser.add_argument("--poll", type=float, default=0.2,
                        help="seconds between idle polls (default 0.2; "
                        "empty polls back off exponentially from here)")
    parser.add_argument("--batch", type=int, default=None,
                        help="work items to claim per round-trip "
                        "(default 4; older services hand out one)")
    parser.add_argument("--max-idle", type=float, default=None,
                        help="exit cleanly after this many idle seconds "
                        "(default: run until interrupted)")
    parser.add_argument("--once", action="store_true",
                        help="exit after executing one work item")
    parser.add_argument("--wire", choices=["auto", "json"], default="auto",
                        help="claim/result encoding: auto upgrades to "
                        "binary frames when the board answers in them, "
                        "json pins plain JSON (default auto)")
    _add_log_level(parser)
    args = parser.parse_args(argv)

    from repro.distributed.work import worker_name
    from repro.distributed.worker import run_worker

    _setup_logging(args.log_level, worker_id=worker_name(args.name))

    try:
        kwargs = dict(
            name=args.name,
            poll_interval=args.poll,
            max_idle=args.max_idle,
            once=args.once,
            wire=args.wire,
        )
        if args.batch is not None:
            kwargs["batch"] = args.batch
        return run_worker(args.connect, **kwargs)
    except KeyboardInterrupt:
        return 0


# ---------------------------------------------------------------------------
# `python -m repro store ...` subcommand
# ---------------------------------------------------------------------------


def _store_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro store",
        description="Inspect and maintain the shard block store (completed "
        "seed blocks under <cache>/shards).  Current layout is v2: binary "
        "frames appended to columnar segment files; legacy v1 per-block "
        "JSON documents remain readable until migrated.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    migrate_p = sub.add_parser(
        "migrate",
        help="rewrite legacy v1 JSON block documents into v2 segments",
    )
    migrate_p.add_argument(
        "--root", default=None,
        help="cache root to migrate (default: REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    _add_log_level(parser)
    args = parser.parse_args(argv)
    _setup_logging(args.log_level)

    from repro.distributed.store import ShardStore

    store = ShardStore(root=args.root)
    outcome = store.migrate()
    print(
        f"shard store at {store.root}: migrated {outcome['migrated']} "
        f"block(s) into segments, skipped {outcome['skipped']} "
        f"(unreadable/stale, left in place)"
    )
    return 0


# ---------------------------------------------------------------------------
# `python -m repro fleet ...` subcommand
# ---------------------------------------------------------------------------


def _fleet_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro fleet",
        description="Show aggregated worker telemetry from a running results "
        "service (GET /v1/fleet): items executed, busy fraction and claim "
        "latency per worker, as a one-shot or refreshing table.",
    )
    parser.add_argument("--connect", required=True,
                        help="base URL of the results service "
                        "(e.g. http://127.0.0.1:8077)")
    parser.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                        help="refresh the table every SECONDS until "
                        "interrupted (default: print once and exit)")
    parser.add_argument("--json", action="store_true",
                        help="emit the raw /v1/fleet JSON instead of a table")
    _add_log_level(parser)
    args = parser.parse_args(argv)
    _setup_logging(args.log_level)

    import json

    from repro.obs.fleet import render_fleet_table
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.connect, timeout=30.0)

    def show() -> None:
        summary = client.fleet()
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(render_fleet_table(summary))

    try:
        if args.watch is None:
            show()
            return 0
        while True:
            show()
            print()
            time.sleep(max(args.watch, 0.1))
    except KeyboardInterrupt:
        return 0
    except (ServiceError, OSError) as error:
        print(f"error: cannot reach {args.connect}: {error}", file=sys.stderr)
        return 1


# ---------------------------------------------------------------------------
# `python -m repro history ...` subcommand
# ---------------------------------------------------------------------------


def _history_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro history",
        description="Query the append-only run-history ledger: every engine "
        "run and bench timing lands there as a schema-versioned record "
        "(under $REPRO_HISTORY_DIR, default <cache>/history), and the "
        "regression sentinel judges new runs against it.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser("list", help="tabulate recorded runs, newest first")
    list_p.add_argument("--kind", default=None, choices=["run", "bench"],
                        help="only run records or only bench records")
    list_p.add_argument("--scenario", default=None)
    list_p.add_argument("--backend", default=None)
    list_p.add_argument("--executor", default=None)
    list_p.add_argument("--limit", type=int, default=20,
                        help="newest records to show (default 20)")
    list_p.add_argument("--json", action="store_true",
                        help="emit the matching records as JSON")

    show_p = sub.add_parser("show", help="one record + its sentinel verdict")
    show_p.add_argument("id", help="record id (see `history list`)")

    diff_p = sub.add_parser("diff", help="compare two records side by side")
    diff_p.add_argument("ids", nargs=2, metavar="ID",
                        help="two record ids (see `history list`)")

    prune_p = sub.add_parser("prune", help="compact the ledger")
    prune_p.add_argument("--keep", type=int, default=None,
                         help="retain only the newest N records")
    prune_p.add_argument("--older-than", type=float, default=None,
                         metavar="DAYS", help="drop records older than DAYS")

    import_p = sub.add_parser(
        "import",
        help="seed the ledger from committed BENCH_*.json reports "
        "(how CI bootstraps the regression baseline)",
    )
    import_p.add_argument("files", nargs="+", metavar="FILE",
                          help="BENCH_distributed/BENCH_scaling/BENCH_results "
                          "style JSON reports")

    args = parser.parse_args(argv)

    import json

    from repro.obs.history import RunLedger

    ledger = RunLedger()
    if args.command == "list":
        return _history_list(ledger, args)
    if args.command == "show":
        from repro.obs import sentinel

        record = ledger.get(args.id)
        if record is None:
            print(f"error: no record with id {args.id!r}", file=sys.stderr)
            return 2
        print(json.dumps(record, indent=2, sort_keys=True))
        print()
        print(sentinel.evaluate(ledger, record).render())
        return 0
    if args.command == "diff":
        return _history_diff(ledger, *args.ids)
    if args.command == "prune":
        if args.keep is None and args.older_than is None:
            print("error: prune needs --keep and/or --older-than",
                  file=sys.stderr)
            return 2
        cutoff = (
            None if args.older_than is None
            else time.time() - args.older_than * 86400.0
        )
        kept, dropped = ledger.prune(keep=args.keep, older_than=cutoff)
        print(f"pruned: kept {kept}, dropped {dropped}")
        return 0
    # import
    from repro.obs.history import (
        record_backend_report,
        record_distributed_report,
    )

    total = 0
    for path in args.files:
        try:
            payload = json.loads(open(path, encoding="utf-8").read())
        except (OSError, ValueError) as error:
            print(f"error: cannot read {path}: {error}", file=sys.stderr)
            return 2
        # Distributed reports carry `timings`; backend reports `scenarios`.
        if "timings" in payload:
            records = record_distributed_report(payload, ledger=ledger)
        elif "scenarios" in payload:
            records = record_backend_report(payload, ledger=ledger)
        else:
            print(f"error: {path} is not a recognised BENCH report",
                  file=sys.stderr)
            return 2
        total += len(records)
        print(f"imported {len(records)} record(s) from {path}")
    print(f"ledger now holds {len(ledger)} record(s) at {ledger.root}")
    return 0 if total else 1


def _history_list(ledger, args) -> int:
    import json

    filters = {
        key: getattr(args, key)
        for key in ("kind", "scenario", "backend", "executor")
        if getattr(args, key) is not None
    }
    records = ledger.query(limit=max(1, args.limit), **filters)
    if args.json:
        print(json.dumps(records, indent=2, sort_keys=True))
        return 0
    if not records:
        print(f"no records in {ledger.root} (run a scenario or bench first)")
        return 0
    headers = ("id", "kind", "scenario", "backend", "exec", "wall s",
               "real/s", "cache%", "age")
    rows = []
    now = time.time()
    for r in records:
        wall = r.get("wall_seconds")
        throughput = r.get("throughput")
        if throughput is None and wall and r.get("realisations"):
            throughput = float(r["realisations"]) / float(wall)
        blocks = r.get("blocks_total") or 0
        cached = r.get("blocks_cached") or 0
        execute = r.get("executor")
        if execute is None and r.get("worker_count") is not None:
            execute = f"{r['worker_count']}w"
        rows.append([
            str(r.get("id", "?")),
            str(r.get("kind", "?")),
            str(r.get("scenario", "?")),
            str(r.get("backend", "?")),
            str(execute or "-"),
            "-" if wall is None else f"{float(wall):.2f}",
            "-" if throughput is None else f"{float(throughput):.1f}",
            "-" if not blocks else f"{100.0 * cached / blocks:.0f}",
            _age(now - float(r.get("ts") or now)),
        ])
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    print("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip())
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)).rstrip())
    print()
    print(_history_trend(records))
    return 0


def _history_trend(records) -> str:
    """Per-cohort wall-time percentile summary of the listed records.

    The p50/p95 columns come from bucketing wall times into the metrics
    module's histogram layout and interpolating — the same estimator the
    fleet table uses for claim latency.
    """
    from repro.obs.metrics import DEFAULT_BUCKETS, histogram_quantile

    buckets = list(DEFAULT_BUCKETS) + ["+Inf"]
    cohorts = {}
    for r in records:
        key = (r.get("kind", "?"), r.get("scenario", "?"), r.get("backend", "?"))
        cohorts.setdefault(key, []).append(r)
    lines = ["trend (over listed records):",
             f"  {'cohort':<40} {'n':>3}  {'p50 s':>8}  {'p95 s':>8}"]
    for key in sorted(cohorts):
        walls = [
            float(r["wall_seconds"]) for r in cohorts[key]
            if r.get("wall_seconds") is not None
        ]
        counts = [0] * len(buckets)
        for wall in walls:
            for i, bound in enumerate(DEFAULT_BUCKETS):
                if wall <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
        p50 = histogram_quantile(buckets, counts, 0.50)
        p95 = histogram_quantile(buckets, counts, 0.95)
        label = "/".join(str(part) for part in key)
        lines.append(
            f"  {label:<40} {len(walls):>3}  "
            f"{'-' if p50 is None else format(p50, '8.3f')}  "
            f"{'-' if p95 is None else format(p95, '8.3f')}"
        )
    return "\n".join(lines)


def _age(seconds: float) -> str:
    seconds = max(0.0, seconds)
    if seconds < 90:
        return f"{seconds:.0f}s"
    if seconds < 5400:
        return f"{seconds / 60:.0f}m"
    if seconds < 172800:
        return f"{seconds / 3600:.0f}h"
    return f"{seconds / 86400:.0f}d"


def _history_diff(ledger, id_a: str, id_b: str) -> int:
    records = []
    for record_id in (id_a, id_b):
        record = ledger.get(record_id)
        if record is None:
            print(f"error: no record with id {record_id!r}", file=sys.stderr)
            return 2
        records.append(record)
    a, b = records
    print(f"diff {id_a} ({a.get('scenario')}) -> {id_b} ({b.get('scenario')})")
    scalar_keys = [
        "kind", "scenario", "backend", "executor", "worker_count",
        "effective_cpus", "realisations", "blocks_total", "blocks_cached",
        "shards_dispatched", "wall_seconds", "throughput",
        "repro_version", "git_revision",
    ]
    rows = []
    for key in scalar_keys:
        va, vb = a.get(key), b.get(key)
        if va is None and vb is None:
            continue
        rows.append((key, va, vb))
    for section in ("timings", "attribution"):
        ta, tb = a.get(section) or {}, b.get(section) or {}
        for key in sorted(set(ta) | set(tb)):
            rows.append((f"{section}.{key}", ta.get(key), tb.get(key)))
    for key, va, vb in rows:
        delta = ""
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
            if va == vb:
                delta = "="
            elif va:
                delta = f"{(float(vb) - float(va)) / abs(float(va)) * 100:+.0f}%"
        fa = "-" if va is None else (
            f"{va:.4f}" if isinstance(va, float) else str(va)
        )
        fb = "-" if vb is None else (
            f"{vb:.4f}" if isinstance(vb, float) else str(vb)
        )
        marker = "" if fa == fb else "  *"
        print(f"  {key:<34} {fa:>18}  {fb:>18}  {delta:>6}{marker}")
    return 0


# ---------------------------------------------------------------------------
# `python -m repro trace ...` subcommand
# ---------------------------------------------------------------------------


def _trace_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Work with saved span traces (the NDJSON files written "
        "by `bench --trace-output` and GET /v1/jobs/{id}/trace).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    render_p = sub.add_parser(
        "render", help="replay an exported trace as an indented span tree"
    )
    render_p.add_argument("file", help="NDJSON trace export (one span per line)")
    render_p.add_argument(
        "--min-duration", type=float, default=0.0, metavar="SECONDS",
        help="hide spans shorter than this (default: show all)",
    )
    args = parser.parse_args(argv)

    from repro.obs.trace import Tracer

    try:
        text = open(args.file, encoding="utf-8").read()
    except OSError as error:
        print(f"error: cannot read {args.file}: {error}", file=sys.stderr)
        return 2
    try:
        tracer = Tracer.from_ndjson(text)
    except ValueError as error:
        print(f"error: {args.file} is not a span NDJSON export: {error}",
              file=sys.stderr)
        return 2
    if not len(tracer):
        print(f"{args.file}: no spans")
        return 0
    print(tracer.render_tree(min_duration=args.min_duration))
    return 0


# ---------------------------------------------------------------------------
# `python -m repro docs ...` subcommand
# ---------------------------------------------------------------------------


def _docs_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro docs",
        description="Regenerate docs/scenario-catalog.md from the scenario "
        "registry, or verify it (and the repo's markdown links) for CI.",
    )
    parser.add_argument("--check", action="store_true",
                        help="fail instead of writing when the committed "
                        "catalog page is stale")
    parser.add_argument("--check-links", action="store_true",
                        help="verify relative links and anchors in "
                        "README.md and docs/*.md")
    parser.add_argument("--root", default=".",
                        help="repository root holding README.md and docs/ "
                        "(default: current directory)")
    args = parser.parse_args(argv)

    from repro.docsgen import check_catalog, check_links, write_catalog

    failures = 0
    if args.check:
        message = check_catalog(args.root)
        if message is not None:
            print(f"error: {message}", file=sys.stderr)
            failures += 1
        else:
            print("docs/scenario-catalog.md is up to date")
    elif not args.check_links:
        path, changed = write_catalog(args.root)
        print(f"{'wrote' if changed else 'unchanged'} {path}")
    if args.check_links:
        problems = check_links(args.root)
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        if problems:
            failures += 1
        else:
            print("markdown links OK")
    return 1 if failures else 0


def _add_log_level(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-level",
        default=None,
        metavar="LEVEL",
        help="logging level (debug/info/warning/error; default: "
        "$REPRO_LOG_LEVEL or warning) — one shared formatter with "
        "timestamp, level, logger and worker id",
    )


def _setup_logging(level=None, worker_id=None) -> None:
    """Install the shared formatter; bad level names exit like argparse."""
    from repro.obs.logconfig import setup_logging

    try:
        setup_logging(level, worker_id=worker_id)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        raise SystemExit(2)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "scenario":
        _setup_logging()
        return _scenario_main(argv[1:])
    if argv and argv[0] == "bench":
        _setup_logging()
        return _bench_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "worker":
        return _worker_main(argv[1:])
    if argv and argv[0] == "fleet":
        return _fleet_main(argv[1:])
    if argv and argv[0] == "store":
        return _store_main(argv[1:])
    if argv and argv[0] == "history":
        _setup_logging()
        return _history_main(argv[1:])
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "docs":
        return _docs_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the figures and tables of the IPDPS 2006 paper "
        "(see `python -m repro scenario --help` for the scenario catalog and "
        "`python -m repro bench --help` for the backend benchmark harness).",
    )
    parser.add_argument(
        "artefact",
        nargs="?",
        choices=sorted(_ARTEFACTS) + ["all"],
        help="which figure/table to regenerate (omit for a quick summary)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use reduced realisation counts (for a fast look)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the artefact's default root seed (reproducible)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="Monte-Carlo process pool size where the artefact supports it",
    )
    args = parser.parse_args(argv)

    if args.artefact is None:
        print(_summary())
        return 0

    names = sorted(_ARTEFACTS) if args.artefact == "all" else [args.artefact]
    mode = "quick" if args.quick else "full"
    for name in names:
        started = time.perf_counter()
        result = _ARTEFACTS[name][mode](seed=args.seed, workers=args.workers)
        _print_result(result, mode, time.perf_counter() - started, name=name)
    return 0


if __name__ == "__main__":
    sys.exit(main())
