"""Ablation: transfer-delay channel models.

The paper's analysis assumes the whole batch delay is a single exponential
draw; the measured behaviour (Fig. 2) is a linear mean with per-task
variability, which the Erlang model captures with the same mean and smaller
variance; a deterministic model ignores variability altogether.  This
ablation quantifies how much the choice moves the simulated mean completion
time away from the analytical prediction (which assumes the exponential
model).
"""

import pytest

from repro.core.completion_time import CompletionTimeSolver
from repro.core.parameters import paper_parameters
from repro.core.policies import LBP1
from repro.montecarlo.runner import run_monte_carlo

WORKLOAD = (100, 60)
GAIN = 0.35
REALISATIONS = 300


def _simulate(delay_kind):
    params = paper_parameters(delay_kind=delay_kind)
    policy = LBP1(GAIN, sender=0, receiver=1)
    return run_monte_carlo(
        params, policy, WORKLOAD, REALISATIONS, seed=909
    ).mean_completion_time


@pytest.fixture(scope="module")
def analytical_prediction():
    return CompletionTimeSolver(paper_parameters()).lbp1(
        WORKLOAD, GAIN, sender=0, receiver=1
    ).mean


@pytest.mark.benchmark(group="delay-model-ablation")
@pytest.mark.parametrize("delay_kind", ["exponential", "erlang", "deterministic"])
def test_delay_model(benchmark, bench_once, delay_kind, analytical_prediction):
    mean = bench_once(benchmark, _simulate, delay_kind)
    print(f"\n  delay model {delay_kind:>13}: simulated mean {mean:7.2f} s "
          f"(analytical, exponential-batch model: {analytical_prediction:.2f} s)")
    # At 0.02 s/task the transfer delay is small relative to the makespan, so
    # every channel model stays near the analytical value — the ablation
    # documents that the exponential-batch assumption is not load-bearing at
    # the paper's operating point.
    assert mean == pytest.approx(analytical_prediction, rel=0.10)
