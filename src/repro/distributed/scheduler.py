"""Dispatching shards to executor slots with load balancing and retries.

The scheduler is a deliberate echo of the paper's subject: shards are the
stochastic workload, executor slots are the (possibly unreliable, possibly
slow) nodes, and the assignment policy balances load across them.  Two
policies ship:

* ``least-loaded`` (default) — assign the next shard to the free slot that
  has completed the least work so far, i.e. *join the shortest queue*; a
  slow or flaky worker naturally receives less work.
* ``round-robin`` — rotate through the free slots regardless of history.

Fault tolerance is by reassignment: a shard whose attempt fails (worker
exception, worker death, or ``shard_timeout`` expiry) is requeued with the
failing slot excluded — as long as another slot exists — and retried up to
``max_attempts`` times before :class:`ShardExecutionError` surfaces the
last error.  Every attempt gets a fresh work-item id, so a late result
from an abandoned attempt can never be double-counted.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from repro.distributed.executors import ShardExecutor
from repro.obs import propagate, trace
from repro.obs.metrics import REGISTRY

logger = logging.getLogger(__name__)

#: Assignment policies the scheduler understands.
ASSIGNMENT_POLICIES = ("least-loaded", "round-robin")

_DISPATCHES = REGISTRY.counter(
    "repro_scheduler_dispatch_total",
    "Shard attempts dispatched to executor slots.",
    labelnames=("executor",),
)
_COMPLETED = REGISTRY.counter(
    "repro_scheduler_shards_completed_total",
    "Shards that completed successfully.",
    labelnames=("executor",),
)
_FAILURES = REGISTRY.counter(
    "repro_scheduler_shard_failures_total",
    "Shard attempts that failed (worker error or death).",
    labelnames=("executor",),
)
_TIMEOUTS = REGISTRY.counter(
    "repro_scheduler_shard_timeouts_total",
    "Shard attempts abandoned after shard_timeout expired.",
    labelnames=("executor",),
)
_REASSIGNMENTS = REGISTRY.counter(
    "repro_scheduler_reassignments_total",
    "Shards requeued for another attempt after a failure or timeout.",
    labelnames=("executor",),
)
_QUEUE_WAIT = REGISTRY.histogram(
    "repro_scheduler_queue_wait_seconds",
    "Seconds a shard waited in the pending queue before dispatch.",
    labelnames=("executor",),
)
_SHARD_RUN = REGISTRY.histogram(
    "repro_scheduler_shard_run_seconds",
    "Seconds between a shard's dispatch and its successful completion.",
    labelnames=("executor",),
)

#: Event callback: receives small JSON-safe progress dictionaries.
SchedulerEvent = Callable[[Dict[str, Any]], None]


class ShardExecutionError(RuntimeError):
    """A shard exhausted its attempts (or no slot ever became available)."""


@dataclass
class _ShardState:
    """Book-keeping for one shard moving through the scheduler."""

    index: int
    item: Dict[str, Any]
    attempts: int = 0
    failed_slots: Set[str] = field(default_factory=set)
    slot: Optional[str] = None
    item_id: Optional[str] = None
    deadline: Optional[float] = None
    last_error: Optional[str] = None
    #: When the shard (re)entered the pending queue / was dispatched —
    #: monotonic stamps feeding the queue-wait and run-time histograms.
    queued_at: Optional[float] = None
    started_at: Optional[float] = None
    #: Dispatch time on the *tracer's* timeline (``trace_ctx["sent_at"]``);
    #: paired with the ack time to normalise the child's clock.
    sent_at: Optional[float] = None
    #: Total seconds spent queued across every attempt (the ledger's
    #: queue-wait component).
    queue_wait_total: float = 0.0


class ShardScheduler:
    """Assigns shard work items to executor slots until all complete."""

    def __init__(
        self,
        executor: ShardExecutor,
        assignment: str = "least-loaded",
        max_attempts: int = 3,
        shard_timeout: Optional[float] = None,
        slot_wait: float = 60.0,
        poll_interval: float = 0.25,
        on_event: Optional[SchedulerEvent] = None,
        on_result: Optional[Callable[[int, Dict[str, Any]], None]] = None,
    ) -> None:
        if assignment not in ASSIGNMENT_POLICIES:
            raise ValueError(
                f"unknown assignment policy {assignment!r}; known: "
                f"{', '.join(ASSIGNMENT_POLICIES)}"
            )
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts!r}")
        self.executor = executor
        self.assignment = assignment
        self.max_attempts = max_attempts
        self.shard_timeout = shard_timeout
        self.slot_wait = slot_wait
        self.poll_interval = poll_interval
        self.on_event = on_event
        #: Called with ``(shard_index, result)`` the moment a shard
        #: completes — the runner persists blocks here, so an interrupted
        #: or partially-failed run keeps everything that did finish.
        self.on_result = on_result
        #: Completed shard count per slot (the load-balancing signal).
        self.slot_completed: Dict[str, int] = {}
        #: Per-shard overhead attribution (queue-wait / wire / deserialize
        #: / compute seconds), filled as shards complete; the engine folds
        #: it into ``EngineReport.timings``.
        self.shard_attribution: Dict[int, Dict[str, float]] = {}
        #: Highest number of simultaneously in-flight shards observed —
        #: the honest divisor when converting summed per-shard seconds to
        #: wall-equivalent seconds.
        self.peak_in_flight = 0
        self._round_robin = 0
        #: Metrics label: which executor kind this scheduler drives.
        self._executor_label = type(executor).__name__

    # -- events ------------------------------------------------------------

    def _emit(self, event: str, **payload: Any) -> None:
        if self.on_event is not None:
            self.on_event({"event": event, **payload})

    # -- assignment policy -------------------------------------------------

    def _pick_slot(
        self,
        free: List[str],
        state: _ShardState,
        load: Dict[str, int],
    ) -> Optional[str]:
        """A free slot for ``state`` under the configured policy.

        Slots that already failed this shard are avoided whenever any other
        slot is free (on the last resort a failed slot is reused — better
        one more attempt than none).  ``load`` is the current in-flight
        count per slot: with ``slot_depth > 1`` a slot stays "free" until
        its depth is full, and the emptiest pipeline wins first.
        """
        candidates = [s for s in free if s not in state.failed_slots] or free
        if not candidates:
            return None
        if self.assignment == "round-robin":
            slot = candidates[self._round_robin % len(candidates)]
            self._round_robin += 1
            return slot
        # least-loaded: join the shortest queue — fewest items in flight,
        # then least completed work, with a stable tie-break by name.
        return min(
            candidates,
            key=lambda s: (load.get(s, 0), self.slot_completed.get(s, 0), s),
        )

    # -- the dispatch loop -------------------------------------------------

    def run(self, items: Dict[int, Dict[str, Any]]) -> Dict[int, Dict[str, Any]]:
        """Execute every work item; returns shard index → result payload."""
        now = time.monotonic()
        states = {
            index: _ShardState(index=index, item=item, queued_at=now)
            for index, item in items.items()
        }
        pending: List[int] = sorted(states)
        in_flight: Dict[str, _ShardState] = {}  # item_id -> state
        results: Dict[int, Dict[str, Any]] = {}
        no_slot_since: Optional[float] = None

        try:
            self._run_loop(states, pending, in_flight, results, no_slot_since)
        except BaseException:
            # Leaving items in flight on an abort (a shard exhausting its
            # attempts, Ctrl-C) would strand them on shared executors —
            # the service's worker board outlives this run, and a stranded
            # claimed item makes its dead worker an immortal phantom slot.
            for item_id, state in in_flight.items():
                if state.slot is not None:
                    self.executor.abandon(state.slot, item_id)
            raise
        return results

    def _run_loop(
        self,
        states: Dict[int, _ShardState],
        pending: List[int],
        in_flight: Dict[str, _ShardState],
        results: Dict[int, Dict[str, Any]],
        no_slot_since: Optional[float],
    ) -> None:
        while pending or in_flight:
            now = time.monotonic()
            live = list(self.executor.slots())

            # A fleet with no live slots is only an error once it persists
            # past slot_wait — HTTP workers register asynchronously.
            if not live and not in_flight:
                if no_slot_since is None:
                    no_slot_since = now
                elif now - no_slot_since > self.slot_wait:
                    raise ShardExecutionError(
                        f"no executor slot became available within "
                        f"{self.slot_wait:g}s ({len(pending)} shards pending)"
                    )
                time.sleep(min(self.poll_interval, 0.2))
                continue
            no_slot_since = None

            # -- assignment --------------------------------------------
            # Each slot may pipeline up to the executor's slot_depth items
            # (the worker board's depth mirrors the fleet's claim batch);
            # every item keeps its own lease, so a slot dying mid-pipeline
            # reassigns only the items that never finished.
            depth = max(1, int(getattr(self.executor, "slot_depth", 1)))
            load: Dict[str, int] = {}
            for flight in in_flight.values():
                if flight.slot is not None:
                    load[flight.slot] = load.get(flight.slot, 0) + 1
            free = [slot for slot in live if load.get(slot, 0) < depth]
            while pending and free:
                state = states[pending[0]]
                slot = self._pick_slot(free, state, load)
                if slot is None:  # pragma: no cover - free is non-empty
                    break
                pending.pop(0)
                load[slot] = load.get(slot, 0) + 1
                if load[slot] >= depth:
                    free.remove(slot)
                state.attempts += 1
                state.slot = slot
                state.item_id = f"{state.item['task']}:s{state.index}:a{state.attempts}"
                state.deadline = (
                    now + self.shard_timeout if self.shard_timeout else None
                )
                state.started_at = time.monotonic()
                if state.queued_at is not None:
                    queue_wait = state.started_at - state.queued_at
                    state.queue_wait_total += queue_wait
                    _QUEUE_WAIT.labels(executor=self._executor_label).observe(
                        queue_wait
                    )
                in_flight[state.item_id] = state
                self.peak_in_flight = max(self.peak_in_flight, len(in_flight))
                payload = {**state.item, "id": state.item_id}
                ctx = propagate.make_context(
                    shard=state.index, attempt=state.attempts
                )
                if ctx is not None:
                    payload["trace_ctx"] = ctx
                    state.sent_at = ctx["sent_at"]
                else:
                    state.sent_at = None
                self.executor.start(slot, payload)
                _DISPATCHES.labels(executor=self._executor_label).inc()
                self._emit(
                    "dispatch",
                    shard=state.index,
                    slot=slot,
                    attempt=state.attempts,
                )

            # -- collection --------------------------------------------
            for outcome in self.executor.poll(self.poll_interval):
                state = in_flight.pop(outcome.item_id, None)
                if state is None:
                    continue  # late result of an abandoned attempt
                if outcome.ok:
                    # The shipped span subtree is telemetry, not shard
                    # data — strip it before the result reaches merging
                    # and the shard store.
                    subtree = None
                    if isinstance(outcome.result, dict):
                        subtree = outcome.result.pop("trace", None)
                    results[state.index] = outcome.result
                    if self.on_result is not None:
                        self.on_result(state.index, outcome.result)
                    self.slot_completed[outcome.slot] = (
                        self.slot_completed.get(outcome.slot, 0) + 1
                    )
                    _COMPLETED.labels(executor=self._executor_label).inc()
                    if state.started_at is not None:
                        run_seconds = time.monotonic() - state.started_at
                        _SHARD_RUN.labels(
                            executor=self._executor_label
                        ).observe(run_seconds)
                        self._finish_telemetry(
                            state, outcome.slot, run_seconds, subtree
                        )
                    self._emit(
                        "done",
                        shard=state.index,
                        slot=outcome.slot,
                        attempt=state.attempts,
                        completed=len(results),
                        total=len(states),
                    )
                else:
                    self._requeue(state, outcome.slot, outcome.error, pending)

            # -- timeouts ----------------------------------------------
            if self.shard_timeout:
                now = time.monotonic()
                for item_id, state in list(in_flight.items()):
                    if state.deadline is not None and now > state.deadline:
                        del in_flight[item_id]
                        self.executor.abandon(state.slot, item_id)
                        _TIMEOUTS.labels(executor=self._executor_label).inc()
                        self._emit(
                            "timeout",
                            shard=state.index,
                            slot=state.slot,
                            attempt=state.attempts,
                        )
                        self._requeue(
                            state,
                            state.slot,
                            f"shard timed out after {self.shard_timeout:g}s "
                            f"on slot {state.slot}",
                            pending,
                        )

    def _finish_telemetry(
        self,
        state: _ShardState,
        slot: str,
        run_seconds: float,
        subtree: Optional[Dict[str, Any]],
    ) -> None:
        """Record the shard span, stitch the child subtree, file the ledger.

        The ``scheduler.shard`` span covers dispatch→ack on the parent
        tracer's timeline; the worker's shipped spans are normalised into
        that interval (see :mod:`repro.obs.propagate`), so the visible gap
        between the shard span's edges and the grafted ``worker.item``
        span *is* the wire + remote-queue overhead.
        """
        tracer = trace.current_tracer()
        if tracer is not None:
            t_recv = tracer.now()
            t_send = (
                state.sent_at if state.sent_at is not None
                else t_recv - run_seconds
            )
            shard_span = tracer.record(
                "scheduler.shard",
                t_recv - t_send,
                start=t_send,
                shard=state.index,
                slot=slot,
                attempt=state.attempts,
            )
            propagate.stitch_subtree(
                tracer,
                subtree,
                parent_id=shard_span.span_id,
                t_send=t_send,
                t_recv=t_recv,
            )
        totals = propagate.subtree_totals(subtree)
        self.shard_attribution[state.index] = {
            "queue_wait_seconds": state.queue_wait_total,
            "round_trip_seconds": run_seconds,
            "remote_busy_seconds": min(totals["busy"], run_seconds),
            "deserialize_seconds": totals["deserialize"],
            "compute_seconds": totals["compute"],
            "wire_seconds": (
                max(0.0, run_seconds - totals["busy"])
                if totals["busy"] > 0 else 0.0
            ),
            "attempts": float(state.attempts),
        }

    def _requeue(
        self,
        state: _ShardState,
        slot: Optional[str],
        error: Optional[str],
        pending: List[int],
    ) -> None:
        state.last_error = error or "unknown shard failure"
        if slot is not None:
            state.failed_slots.add(slot)
        _FAILURES.labels(executor=self._executor_label).inc()
        self._emit(
            "failed",
            shard=state.index,
            slot=slot,
            attempt=state.attempts,
            error=state.last_error,
        )
        if state.attempts >= self.max_attempts:
            raise ShardExecutionError(
                f"shard {state.index} failed after {state.attempts} attempts; "
                f"last error: {state.last_error}"
            )
        _REASSIGNMENTS.labels(executor=self._executor_label).inc()
        logger.warning(
            "reassigning shard %d (item %s, attempt %d/%d) on %s after %s: %s",
            state.index,
            state.item_id,
            state.attempts,
            self.max_attempts,
            self._executor_label,
            f"slot {slot}" if slot is not None else "no slot",
            state.last_error,
        )
        state.slot = None
        state.item_id = None
        state.deadline = None
        # Failed shards go to the front: they are the oldest work.
        pending.insert(0, state.index)
        state.queued_at = time.monotonic()
