"""Expected overall completion time of the two-node system (eq. (4)).

The quantity computed here is ``µ^{k1,k2}_{M1,M2}``: the expected time until
*every* task in the system — the ``M1`` and ``M2`` tasks held by the nodes
plus the batch of ``L`` tasks in transit — has been executed, given the
initial work state ``(k1, k2)``.  Following Section 2.1.1 of the paper, the
computation proceeds by regeneration (first-step) analysis:

1. a companion table ``µ̂`` for the system *without* anything in transit is
   filled by dynamic programming over the remaining loads (its ``(0, 0)``
   entry is 0: nothing left to do);
2. the main table is filled the same way, with an extra regeneration event —
   the batch arrival ``Z`` at rate ``λ_Z`` — whose successor state is read
   from ``µ̂`` at the post-arrival load.

For every load pair the (up to four) reachable work states form a small
linear system ``A µ = b`` (the matrix of eq. (4)); three interchangeable
solvers are provided:

* ``"reference"`` — a straightforward double loop, one small solve per load
  pair (easiest to audit against the equations in the paper);
* ``"vectorized"`` — the same recursion swept along anti-diagonals
  ``M1 + M2 = const`` so that thousands of independent small systems are
  solved in one batched :func:`numpy.linalg.solve` call;
* ``"ctmc"`` — an independent formulation that builds the full absorbing
  continuous-time Markov chain and solves one sparse linear system for the
  expected absorption time (used to cross-validate the recursion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.parameters import SystemParameters, validate_workload
from repro.core.regeneration import (
    TwoNodeRates,
    batched_coupling_systems,
    exit_rate_components,
)
from repro.core.state import (
    WorkState,
    reachable_work_states,
    validate_work_state,
    work_state_rate_matrix,
)

__all__ = [
    "CompletionTimeSolver",
    "LBP1Prediction",
    "expected_completion_time",
    "expected_completion_time_lbp1",
]


@dataclass(frozen=True)
class LBP1Prediction:
    """Model prediction for one LBP-1 configuration."""

    mean: float
    gain: float
    sender: int
    receiver: int
    batch_size: int
    workload: Tuple[int, int]
    initial_state: Tuple[int, int]

    def __post_init__(self) -> None:
        if self.mean < 0:
            raise ValueError("mean completion time cannot be negative")


class CompletionTimeSolver:
    """Solver for the expected overall completion time of a two-node system.

    Parameters
    ----------
    params:
        Two-node system parameters.
    method:
        ``"vectorized"`` (default), ``"reference"`` or ``"ctmc"``.

    Notes
    -----
    The solver caches the no-transit table ``µ̂`` between calls (it depends
    only on the system parameters), which makes gain sweeps over ``K`` cheap:
    only the much smaller main table is recomputed per gain.
    """

    METHODS = ("vectorized", "reference", "ctmc")

    def __init__(self, params: SystemParameters, method: str = "vectorized") -> None:
        params.require_two_nodes()
        if method not in self.METHODS:
            raise ValueError(f"method must be one of {self.METHODS}, got {method!r}")
        self.params = params
        self.method = method
        self._rates = TwoNodeRates.from_params(params)
        # hat-table cache: {reachable-states tuple: ndarray (n_states, R0+1, R1+1)}
        self._hat_cache: Dict[Tuple[WorkState, ...], np.ndarray] = {}

    # ------------------------------------------------------------------ API --

    def mean_completion_time(
        self,
        tasks: Sequence[int],
        in_transit: int = 0,
        destination: int = 1,
        initial_state: Sequence[int] = (1, 1),
        transit_rate: Optional[float] = None,
    ) -> float:
        """Expected completion time for loads ``tasks`` plus ``in_transit`` tasks.

        Parameters
        ----------
        tasks:
            ``(M0, M1)`` — tasks held by node 0 and node 1 at ``t = 0``
            (excluding the batch in transit).
        in_transit:
            Size ``L`` of the batch on the network at ``t = 0`` (0 for none).
        destination:
            Index of the node the batch is travelling to.
        initial_state:
            Work state ``(k0, k1)`` at ``t = 0`` (1 = up).
        transit_rate:
            Exponential rate of the batch-transfer delay; by default derived
            from the system's delay model and the batch size.
        """
        loads = validate_workload(tasks)
        if len(loads) != 2:
            raise ValueError(f"expected two load entries, got {len(loads)}")
        state = validate_work_state(initial_state, 2)
        if in_transit < 0:
            raise ValueError(f"in_transit must be >= 0, got {in_transit!r}")
        if destination not in (0, 1):
            raise IndexError("destination must be 0 or 1 for a two-node system")

        if self.method == "ctmc":
            return self._mean_via_ctmc(loads, in_transit, destination, state, transit_rate)

        states = reachable_work_states(state, self.params)
        state_idx = states.index(state)

        transit_add = (
            in_transit if destination == 0 else 0,
            in_transit if destination == 1 else 0,
        )
        if in_transit == 0:
            hat = self._hat_table(states, loads)
            return float(hat[state_idx, loads[0], loads[1]])

        if transit_rate is None:
            source = 1 - destination
            transit_rate = self.params.transfer_rate(source, destination, in_transit)
        if not np.isfinite(transit_rate):
            # Instantaneous transfer: the batch is effectively already there.
            post = (loads[0] + transit_add[0], loads[1] + transit_add[1])
            hat = self._hat_table(states, post)
            return float(hat[state_idx, post[0], post[1]])

        hat_shape = (loads[0] + transit_add[0], loads[1] + transit_add[1])
        hat = self._hat_table(states, hat_shape)
        main = self._solve_table(
            states,
            shape=loads,
            transit_rate=float(transit_rate),
            hat_table=hat,
            transit_add=transit_add,
        )
        return float(main[state_idx, loads[0], loads[1]])

    def lbp1(
        self,
        workload: Sequence[int],
        gain: float,
        sender: Optional[int] = None,
        receiver: Optional[int] = None,
        initial_state: Sequence[int] = (1, 1),
    ) -> LBP1Prediction:
        """Model prediction of the mean completion time under LBP-1.

        ``L = round(gain * m_sender)`` tasks leave the sender at ``t = 0``
        and travel to the receiver with the system's load-dependent delay.
        """
        loads = validate_workload(workload, self.params)
        if not 0.0 <= gain <= 1.0:
            raise ValueError(f"gain must lie in [0, 1], got {gain!r}")
        sender, receiver = _resolve_pair(loads, sender, receiver)

        batch = int(round(gain * loads[sender]))
        batch = min(batch, loads[sender])
        remaining = list(loads)
        remaining[sender] -= batch

        mean = self.mean_completion_time(
            tasks=remaining,
            in_transit=batch,
            destination=receiver,
            initial_state=initial_state,
        )
        return LBP1Prediction(
            mean=mean,
            gain=float(gain),
            sender=sender,
            receiver=receiver,
            batch_size=batch,
            workload=(loads[0], loads[1]),
            initial_state=(int(initial_state[0]), int(initial_state[1])),
        )

    def gain_sweep(
        self,
        workload: Sequence[int],
        gains: Sequence[float],
        sender: Optional[int] = None,
        receiver: Optional[int] = None,
        initial_state: Sequence[int] = (1, 1),
    ) -> np.ndarray:
        """Mean completion time for every gain in ``gains`` (Fig. 3 curve)."""
        loads = validate_workload(workload, self.params)
        sender_r, receiver_r = _resolve_pair(loads, sender, receiver)
        # Pre-warm the hat cache with the largest post-arrival load so each
        # gain evaluation only fills its (small) main table.
        states = reachable_work_states(validate_work_state(initial_state, 2), self.params)
        max_batch = int(round(max(gains, default=0.0) * loads[sender_r]))
        post = list(loads)
        post[sender_r] -= max_batch
        post[receiver_r] += max_batch
        warm_shape = (
            max(loads[0], post[0] if receiver_r == 0 else loads[0] - 0),
            max(loads[1], post[1] if receiver_r == 1 else loads[1]),
        )
        self._hat_table(states, warm_shape)

        return np.array(
            [
                self.lbp1(
                    loads,
                    gain,
                    sender=sender_r,
                    receiver=receiver_r,
                    initial_state=initial_state,
                ).mean
                for gain in gains
            ]
        )

    # ----------------------------------------------------------- internals --

    def _hat_table(
        self, states: Tuple[WorkState, ...], shape: Sequence[int]
    ) -> np.ndarray:
        """Return (and cache) the no-transit table covering at least ``shape``."""
        shape = (int(shape[0]), int(shape[1]))
        cached = self._hat_cache.get(states)
        if cached is not None and cached.shape[1] > shape[0] and cached.shape[2] > shape[1]:
            return cached
        target = shape
        if cached is not None:
            target = (
                max(shape[0], cached.shape[1] - 1),
                max(shape[1], cached.shape[2] - 1),
            )
        table = self._solve_table(
            states, shape=target, transit_rate=0.0, hat_table=None, transit_add=(0, 0)
        )
        self._hat_cache[states] = table
        return table

    def _solve_table(
        self,
        states: Tuple[WorkState, ...],
        shape: Sequence[int],
        transit_rate: float,
        hat_table: Optional[np.ndarray],
        transit_add: Tuple[int, int],
    ) -> np.ndarray:
        if self.method == "reference":
            return self._solve_table_reference(
                states, shape, transit_rate, hat_table, transit_add
            )
        return self._solve_table_vectorized(
            states, shape, transit_rate, hat_table, transit_add
        )

    def _solve_table_vectorized(
        self,
        states: Tuple[WorkState, ...],
        shape: Sequence[int],
        transit_rate: float,
        hat_table: Optional[np.ndarray],
        transit_add: Tuple[int, int],
    ) -> np.ndarray:
        n_states = len(states)
        R0, R1 = int(shape[0]), int(shape[1])
        table = np.full((n_states, R0 + 1, R1 + 1), np.nan)
        base, svc0, svc1 = exit_rate_components(states, self._rates, transit_rate)
        is_hat = hat_table is None

        for diag in range(R0 + R1 + 1):
            r0 = np.arange(max(0, diag - R1), min(diag, R0) + 1)
            r1 = diag - r0
            if is_hat and diag == 0:
                table[:, 0, 0] = 0.0  # absorbing: nothing left to execute
                continue

            ind0 = (r0 > 0).astype(float)[:, None]  # (cells, 1)
            ind1 = (r1 > 0).astype(float)[:, None]
            lam = base[None, :] + ind0 * svc0[None, :] + ind1 * svc1[None, :]

            rhs = 1.0 / lam
            if np.any(r0 > 0):
                prev0 = np.zeros_like(lam)
                mask = r0 > 0
                prev0[mask] = table[:, r0[mask] - 1, r1[mask]].T
                rhs = rhs + (svc0[None, :] * ind0 / lam) * prev0
            if np.any(r1 > 0):
                prev1 = np.zeros_like(lam)
                mask = r1 > 0
                prev1[mask] = table[:, r0[mask], r1[mask] - 1].T
                rhs = rhs + (svc1[None, :] * ind1 / lam) * prev1
            if not is_hat and transit_rate > 0:
                hat_vals = hat_table[:, r0 + transit_add[0], r1 + transit_add[1]].T
                rhs = rhs + (transit_rate / lam) * hat_vals

            matrices = batched_coupling_systems(states, self.params, lam)
            solution = np.linalg.solve(matrices, rhs[:, :, None])[:, :, 0]
            table[:, r0, r1] = solution.T
        return table

    def _solve_table_reference(
        self,
        states: Tuple[WorkState, ...],
        shape: Sequence[int],
        transit_rate: float,
        hat_table: Optional[np.ndarray],
        transit_add: Tuple[int, int],
    ) -> np.ndarray:
        n_states = len(states)
        R0, R1 = int(shape[0]), int(shape[1])
        table = np.full((n_states, R0 + 1, R1 + 1), np.nan)
        base, svc0, svc1 = exit_rate_components(states, self._rates, transit_rate)
        rate_matrix = work_state_rate_matrix(states, self.params)
        identity = np.eye(n_states)
        is_hat = hat_table is None

        for r0 in range(R0 + 1):
            for r1 in range(R1 + 1):
                if is_hat and r0 == 0 and r1 == 0:
                    table[:, 0, 0] = 0.0
                    continue
                lam = base + (r0 > 0) * svc0 + (r1 > 0) * svc1
                if np.any(lam <= 0):
                    raise ValueError(
                        "a non-absorbing configuration has no outgoing events; "
                        "the workload cannot complete under these parameters"
                    )
                rhs = 1.0 / lam
                if r0 > 0:
                    rhs = rhs + svc0 / lam * table[:, r0 - 1, r1]
                if r1 > 0:
                    rhs = rhs + svc1 / lam * table[:, r0, r1 - 1]
                if not is_hat and transit_rate > 0:
                    rhs = rhs + transit_rate / lam * hat_table[
                        :, r0 + transit_add[0], r1 + transit_add[1]
                    ]
                matrix = identity - rate_matrix / lam[:, None]
                table[:, r0, r1] = np.linalg.solve(matrix, rhs)
        return table

    def _mean_via_ctmc(
        self,
        loads: Tuple[int, int],
        in_transit: int,
        destination: int,
        state: WorkState,
        transit_rate: Optional[float],
    ) -> float:
        from repro.core.ctmc import build_two_node_lbp1_chain

        chain, start = build_two_node_lbp1_chain(
            self.params,
            tasks=loads,
            in_transit=in_transit,
            destination=destination,
            initial_state=state,
            transit_rate=transit_rate,
        )
        return float(chain.expected_absorption_time(start))


# ------------------------------------------------------------- module API --


def _resolve_pair(
    loads: Sequence[int], sender: Optional[int], receiver: Optional[int]
) -> Tuple[int, int]:
    if (sender is None) != (receiver is None):
        raise ValueError("sender and receiver must be given together or not at all")
    if sender is None:
        sender = 1 if loads[1] > loads[0] else 0
        receiver = 1 - sender
        return sender, receiver
    if sender == receiver:
        raise ValueError("sender and receiver must differ")
    if sender not in (0, 1) or receiver not in (0, 1):
        raise IndexError("node indices must be 0 or 1 for a two-node system")
    return sender, receiver


def expected_completion_time(
    params: SystemParameters,
    tasks: Sequence[int],
    in_transit: int = 0,
    destination: int = 1,
    initial_state: Sequence[int] = (1, 1),
    method: str = "vectorized",
) -> float:
    """Functional wrapper around :class:`CompletionTimeSolver.mean_completion_time`."""
    solver = CompletionTimeSolver(params, method=method)
    return solver.mean_completion_time(
        tasks, in_transit=in_transit, destination=destination, initial_state=initial_state
    )


def expected_completion_time_lbp1(
    params: SystemParameters,
    workload: Sequence[int],
    gain: float,
    sender: Optional[int] = None,
    receiver: Optional[int] = None,
    initial_state: Sequence[int] = (1, 1),
    method: str = "vectorized",
) -> float:
    """Mean overall completion time predicted for LBP-1 with gain ``gain``."""
    solver = CompletionTimeSolver(params, method=method)
    return solver.lbp1(
        workload, gain, sender=sender, receiver=receiver, initial_state=initial_state
    ).mean
