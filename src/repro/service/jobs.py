"""Background job queue layered over the orchestrator and result cache.

A *job* is one submission — a named scenario, an inline spec, a list of
names, or a whole scenario family — planned into content-addressed
:class:`~repro.scenarios.spec.ScenarioSpec` points.  The queue serves two
very different cost classes through one interface:

* **cache hits** complete at submit time: every planned point is looked up
  with :meth:`ResultCache.peek` (a metadata-only disk read), so a fully
  cached job never enqueues, never spawns the worker and never imports
  numpy/scipy;
* **misses** run on a single background worker coroutine that executes the
  job's points in a thread through one shared
  :class:`~repro.scenarios.orchestrator.Orchestrator` (one process pool and
  one cache for the whole service), publishing per-point progress events as
  it goes.

Progress is observable two ways: polling :meth:`Job.to_dict` or streaming
:meth:`JobQueue.events`, which yields each state change exactly once per
subscriber (every subscriber replays the full event history from seq 0).
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Dict, List, Optional, Tuple

from repro.obs.metrics import REGISTRY
from repro.obs.trace import Tracer
from repro.scenarios.cache import ResultCache, ScenarioResult
from repro.scenarios.orchestrator import apply_overrides
from repro.scenarios.spec import ScenarioSpec

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED)

_JOBS_SUBMITTED = REGISTRY.counter(
    "repro_jobs_submitted_total", "Jobs accepted by the queue."
)
_JOBS_COMPLETED = REGISTRY.counter(
    "repro_jobs_completed_total",
    "Jobs that reached a terminal state, by state.",
    labelnames=("state",),
)
_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_job_queue_depth", "Jobs waiting in the queue (excludes running)."
)

#: Fields a submission payload may carry.
_SUBMIT_KEYS = frozenset(
    {
        "scenario",
        "scenarios",
        "family",
        "spec",
        "quick",
        "seed",
        "backend",
        "force",
        "shards",
        "executor",
    }
)


def plan_submission(payload: Any) -> Tuple[Tuple[ScenarioSpec, ...], Dict[str, Any]]:
    """Validate a submit payload and expand it into effective specs.

    Exactly one of ``scenario`` (name), ``scenarios`` (list of names),
    ``family`` (family name) or ``spec`` (inline spec dict) selects the
    work; ``quick``/``seed``/``backend``/``shards``/``force`` tune it
    (the first three fold into the effective specs and hence the cache
    keys), while ``executor`` picks *where* sharded points run
    (``inline``/``process``/``workers``) without affecting results —
    every Monte-Carlo point goes through the unified engine, so the
    merged numbers are identical whichever executor computes them.
    Returns the planned specs plus a normalised echo of the request for
    the job record.  Raises ``ValueError`` with a user-facing message on
    any invalid input — validation never imports the numerical stack.
    """
    if not isinstance(payload, dict):
        raise ValueError("submission must be a JSON object")
    unknown = set(payload) - _SUBMIT_KEYS
    if unknown:
        raise ValueError(
            f"unknown submission fields: {', '.join(sorted(unknown))}; "
            f"allowed: {', '.join(sorted(_SUBMIT_KEYS))}"
        )

    selectors = [k for k in ("scenario", "scenarios", "family", "spec") if k in payload]
    if len(selectors) != 1:
        raise ValueError(
            "exactly one of 'scenario', 'scenarios', 'family' or 'spec' "
            "must be given"
        )

    quick = bool(payload.get("quick", False))
    force = bool(payload.get("force", False))
    seed = payload.get("seed")
    if seed is not None and not isinstance(seed, int):
        raise ValueError(f"seed must be an integer, got {seed!r}")
    backend = payload.get("backend")
    if backend is not None and not isinstance(backend, str):
        raise ValueError(f"backend must be a string, got {backend!r}")
    shards = payload.get("shards")
    if shards is not None and (isinstance(shards, bool) or not isinstance(shards, int)):
        raise ValueError(f"shards must be an integer, got {shards!r}")
    executor = payload.get("executor")
    if executor is not None:
        from repro.distributed.executors import EXECUTOR_NAMES

        if executor not in EXECUTOR_NAMES:
            raise ValueError(
                f"unknown shard executor {executor!r}; known executors: "
                f"{', '.join(EXECUTOR_NAMES)}"
            )

    from repro.scenarios import registry

    selector = selectors[0]
    try:
        if selector == "scenario":
            specs = [registry.resolve(str(payload["scenario"]), quick=quick)]
        elif selector == "scenarios":
            names = payload["scenarios"]
            if not isinstance(names, list) or not names:
                raise ValueError("'scenarios' must be a non-empty list of names")
            specs = [registry.resolve(str(name), quick=quick) for name in names]
        elif selector == "family":
            family = registry.get_family(str(payload["family"]))
            specs = list(family.expand(quick=quick))
        else:  # inline spec
            if not isinstance(payload["spec"], dict):
                raise ValueError("'spec' must be a scenario-spec object")
            try:
                specs = [ScenarioSpec.from_dict(payload["spec"])]
            except (KeyError, TypeError) as error:
                raise ValueError(f"invalid inline spec: {error}") from None
    except KeyError as error:
        # Registry lookups raise KeyError with a complete message.
        raise ValueError(str(error.args[0])) from None

    effective = tuple(
        apply_overrides(spec, seed=seed, backend=backend, shards=shards)
        for spec in specs
    )
    request = {
        selector: payload[selector],
        "quick": quick,
        "force": force,
        "seed": seed,
        "backend": backend,
        "shards": shards,
        "executor": executor,
    }
    return effective, request


def _point_payload(spec: ScenarioSpec, result: ScenarioResult, key: str) -> Dict[str, Any]:
    """The per-point result summary stored on the job (JSON-safe, no arrays)."""
    return {
        "name": spec.name,
        "kind": spec.kind,
        "backend": spec.backend,
        "content_hash": spec.content_hash,
        "cache_key": key,
        "from_cache": result.from_cache,
        "runtime_seconds": result.runtime_seconds,
        "headline_label": result.scalars.get("headline_label"),
        "headline": result.scalars.get("headline"),
    }


@dataclass
class Job:
    """One submission moving through the queue."""

    id: str
    request: Dict[str, Any]
    specs: Tuple[ScenarioSpec, ...]
    state: str = QUEUED
    error: Optional[str] = None
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    results: List[Dict[str, Any]] = field(default_factory=list)
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: Span log of the job's execution (None until it runs; cached jobs
    #: never run, so theirs stays empty).
    trace: Optional[Tracer] = field(default=None, repr=False)
    _updated: asyncio.Event = field(default_factory=asyncio.Event, repr=False)
    #: Monotonic birth stamp; event `t` fields are relative to this.
    _monotonic0: float = field(default_factory=time.monotonic, repr=False)

    @property
    def total_points(self) -> int:
        return len(self.specs)

    @property
    def completed_points(self) -> int:
        return len(self.results)

    @property
    def finished(self) -> bool:
        return self.state in (DONE, FAILED)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "state": self.state,
            "request": self.request,
            "points": [spec.name for spec in self.specs],
            "total_points": self.total_points,
            "completed_points": self.completed_points,
            "results": list(self.results),
            "error": self.error,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }

    # -- progress publication (event-loop thread only) ---------------------

    def _publish(self, **extra: Any) -> None:
        event = {
            "seq": len(self.events),
            # Seconds since the job was created (monotonic clock) — lets
            # clients correlate the progress stream with the span trace.
            "t": round(time.monotonic() - self._monotonic0, 6),
            "job": self.id,
            "state": self.state,
            "completed_points": self.completed_points,
            "total_points": self.total_points,
            **extra,
        }
        self.events.append(event)
        self._updated.set()
        self._updated = asyncio.Event()

    async def _wait_update(self) -> None:
        await self._updated.wait()


class JobQueue:
    """Plans, schedules and tracks jobs for the results service.

    Must be constructed (and used) inside a running event loop.  One
    orchestrator — hence one shared Monte-Carlo process pool — is created
    lazily on the first cache miss and reused for every subsequent job.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        max_finished_jobs: int = 256,
        shard_board=None,
        shard_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.workers = workers
        self.cache = cache if cache is not None else ResultCache()
        self.max_finished_jobs = max_finished_jobs
        self.shard_board = shard_board
        self.shard_options = dict(shard_options or {})
        # Board-level option, not an engine knob: how many work items the
        # scheduler keeps in flight per worker (= the fleet's claim batch).
        self.claim_batch = self.shard_options.pop("claim_batch", None)
        self.jobs: Dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._queue: "asyncio.Queue[Job]" = asyncio.Queue()
        self._worker: Optional[asyncio.Task] = None
        self._orchestrator = None
        self._loop = asyncio.get_running_loop()

    # -- lifecycle ---------------------------------------------------------

    async def close(self) -> None:
        """Cancel the worker and shut down the shared process pool."""
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
            self._worker = None
        if self._orchestrator is not None:
            await asyncio.to_thread(self._orchestrator.close)
            self._orchestrator = None

    # -- submission --------------------------------------------------------

    def submit(self, payload: Any) -> Job:
        """Plan ``payload`` into a job; fully cached jobs complete here.

        The fast path — every planned point already in the cache and no
        ``force`` — is a pure metadata read: the job is born ``done``
        without ever touching the queue, the worker thread or numpy.
        """
        specs, request = plan_submission(payload)
        job = Job(id=f"job-{next(self._ids)}", request=request, specs=specs)
        self.jobs[job.id] = job
        self._prune()
        _JOBS_SUBMITTED.inc()

        if not request["force"]:
            cached = self._serve_from_cache(specs)
            if cached is not None:
                job.results.extend(cached)
                job.state = DONE
                job.started_at = job.finished_at = time.time()
                _JOBS_COMPLETED.labels(state=DONE).inc()
                job._publish()
                self._prune()
                return job

        job._publish()
        self._queue.put_nowait(job)
        _QUEUE_DEPTH.set(self._queue.qsize())
        if self._worker is None or self._worker.done():
            self._worker = self._loop.create_task(self._drain())
        return job

    def _serve_from_cache(
        self, specs: Tuple[ScenarioSpec, ...]
    ) -> Optional[List[Dict[str, Any]]]:
        """Per-point payloads if *every* point is cached, else ``None``."""
        points = []
        for spec in specs:
            result = self.cache.peek(spec)
            if result is None:
                return None
            points.append(_point_payload(spec, result, self.cache.key_for(spec)))
        return points

    # -- execution ---------------------------------------------------------

    async def _drain(self) -> None:
        while True:
            job = await self._queue.get()
            _QUEUE_DEPTH.set(self._queue.qsize())
            job.state = RUNNING
            job.started_at = time.time()
            job._publish()
            try:
                await asyncio.to_thread(self._execute, job)
            except Exception as error:  # noqa: BLE001 - job boundary
                job.state = FAILED
                job.error = f"{type(error).__name__}: {error}"
            else:
                job.state = DONE
            job.finished_at = time.time()
            _JOBS_COMPLETED.labels(state=job.state).inc()
            job._publish()
            self._prune()

    def _execute(self, job: Job) -> None:
        """Run a job's points (worker thread; the only numpy-aware path)."""
        from repro.scenarios.orchestrator import Orchestrator

        if self._orchestrator is None:
            self._orchestrator = Orchestrator(
                cache=self.cache,
                workers=self.workers,
                shard_options=self.shard_options,
            )
        orchestrator = self._orchestrator
        orchestrator.shard_executor = self._shard_executor_for(job)
        orchestrator.shard_progress = lambda event: self._loop.call_soon_threadsafe(
            self._record_shard_event, job, event
        )
        force = job.request["force"]
        # Each job records its own span log, served by GET /v1/jobs/{id}/trace.
        tracer = Tracer()
        job.trace = tracer
        try:
            with tracer.activate():
                for spec in job.specs:
                    with tracer.span("job.point", name=spec.name):
                        result = orchestrator.run(spec, force=force)
                    point = _point_payload(spec, result, self.cache.key_for(spec))
                    self._loop.call_soon_threadsafe(self._record_point, job, point)
        finally:
            orchestrator.shard_executor = None
            orchestrator.shard_progress = None

    def _shard_executor_for(self, job: Job):
        """The shard executor a job asked for (board-backed for 'workers')."""
        executor = job.request.get("executor")
        if executor == "workers":
            if self.shard_board is None:
                raise RuntimeError(
                    "this service has no worker board; submit with "
                    "executor='inline' or 'process' instead"
                )
            from repro.service.shards import BoardExecutor

            return BoardExecutor(self.shard_board, slot_depth=self.claim_batch)
        return executor

    def _record_point(self, job: Job, point: Dict[str, Any]) -> None:
        job.results.append(point)
        job._publish(point=point["name"])

    def _record_shard_event(self, job: Job, event: Dict[str, Any]) -> None:
        """Publish an engine progress event into the job's NDJSON stream.

        Every Monte-Carlo point runs through the unified engine, so
        unsharded jobs stream ``cached``/``dispatch``/``done`` events too,
        not just explicitly sharded ones.
        """
        job._publish(shard_event=event)

    def _prune(self) -> None:
        """Evict the oldest *finished* jobs beyond ``max_finished_jobs``.

        A long-lived service accumulates one job record (specs, results,
        event history) per submission; bounding the terminal ones keeps
        memory flat while never dropping a job a client could still be
        following.  Results themselves live on in the cache — a pruned
        job's output is still fetchable by content hash.
        """
        finished = [job for job in self.jobs.values() if job.finished]
        for job in finished[: max(0, len(finished) - self.max_finished_jobs)]:
            del self.jobs[job.id]

    # -- observation -------------------------------------------------------

    def get(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise KeyError(
                f"unknown job {job_id!r}; known jobs: "
                f"{', '.join(self.jobs) or '(none)'}"
            ) from None

    def counts(self) -> Dict[str, int]:
        tally = {state: 0 for state in JOB_STATES}
        for job in self.jobs.values():
            tally[job.state] += 1
        tally["total"] = len(self.jobs)
        return tally

    async def events(self, job: Job) -> AsyncIterator[Dict[str, Any]]:
        """Replay and then follow a job's progress events until terminal."""
        seq = 0
        while True:
            while seq < len(job.events):
                event = job.events[seq]
                seq += 1
                yield event
            if job.finished and seq >= len(job.events):
                return
            await job._wait_update()

    async def wait(self, job: Job, timeout: float = 60.0) -> Job:
        """Block until ``job`` reaches a terminal state (test convenience)."""
        deadline = self._loop.time() + timeout
        while not job.finished:
            remaining = deadline - self._loop.time()
            if remaining <= 0:
                raise TimeoutError(f"job {job.id} still {job.state} after {timeout}s")
            try:
                await asyncio.wait_for(job._wait_update(), timeout=remaining)
            except asyncio.TimeoutError:
                continue
        return job
