"""Tests for the baseline policies."""

import pytest

from repro.core.parameters import NodeParameters, SystemParameters, TransferDelayModel
from repro.core.policies.baselines import (
    NoBalancing,
    ProportionalOneShot,
    SendAllOnFailure,
)


class TestNoBalancing:
    def test_never_transfers(self, paper_params):
        policy = NoBalancing()
        assert policy.initial_transfers((100, 60), paper_params) == []
        assert policy.on_failure(0, (50, 10), paper_params) == []

    def test_validates_workload(self, paper_params):
        with pytest.raises(ValueError):
            NoBalancing().initial_transfers((100,), paper_params)


class TestProportionalOneShot:
    def test_moves_towards_speed_proportional_allocation(self, paper_params):
        transfers = ProportionalOneShot().initial_transfers((100, 60), paper_params)
        assert len(transfers) == 1
        assert transfers[0].source == 0
        assert transfers[0].destination == 1
        # Target for node 0 is 1.08/2.94*160 ≈ 58.8, so ≈ 41 tasks move.
        assert transfers[0].num_tasks == pytest.approx(41, abs=1)

    def test_balanced_input_produces_no_transfers(self):
        params = SystemParameters(nodes=(NodeParameters(1.0), NodeParameters(1.0)))
        assert ProportionalOneShot().initial_transfers((50, 50), params) == []

    def test_three_node_split_covers_all_receivers(self, three_node_params):
        transfers = ProportionalOneShot().initial_transfers((120, 0, 0), three_node_params)
        assert {t.destination for t in transfers} == {1, 2}
        total_moved = sum(t.num_tasks for t in transfers)
        assert 0 < total_moved <= 120

    def test_never_moves_more_than_the_source_has(self, paper_params):
        transfers = ProportionalOneShot().initial_transfers((3, 0), paper_params)
        assert sum(t.num_tasks for t in transfers) <= 3

    def test_no_failure_time_action(self, paper_params):
        assert ProportionalOneShot().on_failure(0, (10, 10), paper_params) == []


class TestSendAllOnFailure:
    def test_no_initial_action(self, paper_params):
        assert SendAllOnFailure().initial_transfers((100, 60), paper_params) == []

    def test_ships_entire_queue_on_failure(self, paper_params):
        transfers = SendAllOnFailure().on_failure(0, (37, 10), paper_params)
        assert sum(t.num_tasks for t in transfers) == 37
        assert all(t.source == 0 for t in transfers)

    def test_empty_queue_means_no_action(self, paper_params):
        assert SendAllOnFailure().on_failure(0, (0, 10), paper_params) == []

    def test_three_node_split_proportional_to_speed(self, three_node_params):
        transfers = SendAllOnFailure().on_failure(2, (0, 0, 60), three_node_params)
        total = sum(t.num_tasks for t in transfers)
        assert total == 60
        by_destination = {t.destination: t.num_tasks for t in transfers}
        # Node 0 is twice as fast as node 1 -> receives roughly twice as much.
        assert by_destination[0] > by_destination[1]
