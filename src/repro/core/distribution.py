"""Distribution function of the overall completion time (eq. (5)).

Section 2.1.2 of the paper derives a linear ODE system
``ṗ = A1 p + B1 u`` for ``p^{k1,k2}_{M1,M2}(t) = P(T^{k1,k2}_{M1,M2} ≤ t)``.
That system is exactly the Kolmogorov forward equation of the absorbing CTMC
of the two-node system, read off at the absorbing ("everything done") state:
the completion-time CDF is the probability that the chain has been absorbed
by time ``t``.

This module exposes that computation directly on top of
:mod:`repro.core.ctmc`, with three numerical back-ends (uniformization,
sparse matrix exponential, ODE integration) that can be cross-checked
against each other and against the empirical CDF produced by the
Monte-Carlo harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.ctmc import build_two_node_lbp1_chain
from repro.core.parameters import SystemParameters, validate_workload
from repro.core.state import validate_work_state

__all__ = [
    "CompletionTimeCDF",
    "completion_time_cdf",
    "completion_time_cdf_lbp1",
]


@dataclass(frozen=True)
class CompletionTimeCDF:
    """A completion-time CDF evaluated on a time grid."""

    times: np.ndarray
    probabilities: np.ndarray
    workload: Tuple[int, int]
    gain: Optional[float] = None

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=float)
        probabilities = np.asarray(self.probabilities, dtype=float)
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "probabilities", probabilities)
        if times.shape != probabilities.shape:
            raise ValueError("times and probabilities must have the same shape")

    def quantile(self, q: float) -> float:
        """Smallest grid time with CDF value at least ``q``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must lie in [0, 1], got {q!r}")
        reached = np.flatnonzero(self.probabilities >= q)
        if reached.size == 0:
            return float("inf")
        return float(self.times[reached[0]])

    def mean_estimate(self) -> float:
        """Mean completion time estimated from the tabulated CDF.

        Uses ``E[T] = ∫ (1 - F(t)) dt`` over the grid (the tail beyond the
        grid is ignored, so choose a grid that reaches F ≈ 1).
        """
        survival = 1.0 - self.probabilities
        # NumPy 2 renamed trapz -> trapezoid; support both.
        integrate = getattr(np, "trapezoid", None) or np.trapz
        return float(integrate(survival, self.times))


def completion_time_cdf(
    params: SystemParameters,
    tasks: Sequence[int],
    times: Sequence[float],
    in_transit: int = 0,
    destination: int = 1,
    initial_state: Sequence[int] = (1, 1),
    method: str = "uniformization",
) -> CompletionTimeCDF:
    """CDF of the overall completion time for an explicit initial condition.

    Parameters
    ----------
    params:
        Two-node system parameters.
    tasks:
        ``(M0, M1)`` tasks held by the nodes at ``t = 0``.
    times:
        Evaluation grid.
    in_transit / destination:
        Size and destination of the batch on the network at ``t = 0``.
    initial_state:
        Work state at ``t = 0``.
    method:
        Transient-analysis back-end (``"uniformization"``, ``"expm"``,
        ``"ode"``).
    """
    params.require_two_nodes()
    loads = validate_workload(tasks)
    validate_work_state(initial_state, 2)
    chain, start = build_two_node_lbp1_chain(
        params,
        tasks=loads,
        in_transit=in_transit,
        destination=destination,
        initial_state=initial_state,
    )
    probabilities = chain.absorption_cdf(start, times, method=method)
    return CompletionTimeCDF(
        times=np.asarray(times, dtype=float),
        probabilities=probabilities,
        workload=(loads[0], loads[1]),
    )


def completion_time_cdf_lbp1(
    params: SystemParameters,
    workload: Sequence[int],
    gain: float,
    times: Sequence[float],
    sender: Optional[int] = None,
    receiver: Optional[int] = None,
    initial_state: Sequence[int] = (1, 1),
    method: str = "uniformization",
) -> CompletionTimeCDF:
    """CDF of the completion time under LBP-1 with gain ``gain`` (Fig. 5).

    The sender/receiver pair defaults to "the more loaded node sends", the
    assignment the paper's optimisation selects for all its workloads.
    """
    loads = validate_workload(workload, params)
    if not 0.0 <= gain <= 1.0:
        raise ValueError(f"gain must lie in [0, 1], got {gain!r}")
    if (sender is None) != (receiver is None):
        raise ValueError("sender and receiver must be given together or not at all")
    if sender is None:
        sender = 1 if loads[1] > loads[0] else 0
        receiver = 1 - sender

    batch = min(int(round(gain * loads[sender])), loads[sender])
    remaining = list(loads)
    remaining[sender] -= batch

    cdf = completion_time_cdf(
        params,
        tasks=remaining,
        times=times,
        in_transit=batch,
        destination=receiver,
        initial_state=initial_state,
        method=method,
    )
    return CompletionTimeCDF(
        times=cdf.times,
        probabilities=cdf.probabilities,
        workload=(loads[0], loads[1]),
        gain=float(gain),
    )
