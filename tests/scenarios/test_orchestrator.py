"""Orchestrator behaviour: caching, determinism, sweeps, shared executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenarios import Orchestrator, ResultCache
from repro.scenarios.registry import resolve
from repro.scenarios.spec import PolicySpec, ScenarioSpec, SystemSpec


@pytest.fixture
def orchestrator(tmp_path) -> Orchestrator:
    return Orchestrator(cache=ResultCache(tmp_path / "cache"))


def tiny_spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="tiny",
        kind="mc_point",
        system=SystemSpec.paper(),
        workload=(20, 12),
        policy=PolicySpec(kind="lbp1", gain=0.35, sender=0, receiver=1),
        mc_realisations=4,
        seed=5,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestRun:
    def test_first_run_computes_second_hits_cache(self, orchestrator):
        first = orchestrator.run(tiny_spec())
        second = orchestrator.run(tiny_spec())
        assert not first.from_cache
        assert second.from_cache
        assert second.identical_to(first)

    def test_force_recomputes_to_identical_result(self, orchestrator):
        first = orchestrator.run(tiny_spec())
        forced = orchestrator.run(tiny_spec(), force=True)
        assert not forced.from_cache
        assert forced.identical_to(first)

    def test_seed_override_changes_hash_and_sample(self, orchestrator):
        base = orchestrator.run(tiny_spec())
        reseeded = orchestrator.run(tiny_spec(), seed=6)
        assert reseeded.spec_hash != base.spec_hash
        assert not np.array_equal(
            reseeded.arrays["completion_times"], base.arrays["completion_times"]
        )

    def test_run_by_registry_name(self, orchestrator):
        result = orchestrator.run("smoke")
        assert result.name == "smoke"
        assert result.scalars["num_realisations"] == 5
        assert orchestrator.run("smoke").from_cache

    def test_scalars_survive_json_round_trip_exactly(self, orchestrator):
        first = orchestrator.run(tiny_spec())
        second = orchestrator.run(tiny_spec())
        assert second.scalars["mean_completion_time"] == first.scalars[
            "mean_completion_time"
        ]
        assert isinstance(second.scalars["mean_completion_time"], float)

    def test_no_cache_mode(self, tmp_path):
        orchestrator = Orchestrator(cache=None, use_cache=False)
        assert orchestrator.cache is None
        result = orchestrator.run(tiny_spec())
        assert not result.from_cache

    def test_unknown_kind_rejected(self, orchestrator):
        with pytest.raises(ValueError, match="no runner"):
            orchestrator.run(tiny_spec(kind="fig3").with_(kind="nope"))

    def test_mc_point_matches_direct_monte_carlo(self, orchestrator):
        from repro.core.policies.lbp1 import LBP1
        from repro.montecarlo.runner import run_monte_carlo

        spec = tiny_spec()
        result = orchestrator.run(spec)
        direct = run_monte_carlo(
            spec.system.to_parameters(),
            LBP1(0.35, sender=0, receiver=1),
            spec.workload,
            spec.mc_realisations,
            seed=spec.seed,
        )
        np.testing.assert_array_equal(
            result.arrays["completion_times"], direct.completion_times
        )


class TestSweepAndCompare:
    def test_sweep_runs_every_point_and_caches(self, orchestrator, monkeypatch):
        # Shrink the family for test speed: quick churn points at 2 realisations.
        from repro.scenarios import registry

        results = orchestrator.run_many(
            [s.with_(mc_realisations=2) for s in registry.get_family("churn").expand(True)]
        )
        assert len(results) == 3
        assert not any(r.from_cache for r in results)
        again = orchestrator.run_many(
            [s.with_(mc_realisations=2) for s in registry.get_family("churn").expand(True)]
        )
        assert all(r.from_cache for r in again)

    def test_sweep_expands_registered_family(self, orchestrator):
        from repro.scenarios import registry

        family = registry.ScenarioFamily(
            name="tmp-fam",
            description="throwaway family for this test",
            build=lambda quick: (
                tiny_spec(name="tmp-fam/a"),
                tiny_spec(name="tmp-fam/b", seed=6),
            ),
        )
        registry.register_family(family)
        try:
            results = orchestrator.sweep("tmp-fam")
            assert [r.name for r in results] == ["tmp-fam/a", "tmp-fam/b"]
            assert all(r.from_cache for r in orchestrator.sweep("tmp-fam"))
        finally:
            registry._FAMILIES.pop("tmp-fam", None)

    def test_compare_renders_headlines(self, orchestrator):
        orchestrator.run(tiny_spec())
        text = orchestrator.compare([tiny_spec(), tiny_spec(name="tiny-b")])
        assert "Scenario comparison" in text
        assert "tiny" in text
        assert "mean completion time" in text

    def test_estimate_falls_back_to_adhoc_for_custom_policies(self, tmp_path):
        """A runner-built policy outside the built-in kinds still estimates
        (ad-hoc engine mode), it just cannot use the shard store."""
        from repro.core.policies.base import LoadBalancingPolicy
        from repro.scenarios.orchestrator import Orchestrator, _estimate

        class Quirky(LoadBalancingPolicy):
            name = "quirky"

            def initial_transfers(self, loads, params):
                return []

        spec = tiny_spec()
        with Orchestrator(cache=None, use_cache=False) as ctx:
            estimate, report = _estimate(
                spec, ctx, spec.system.to_parameters(), Quirky(), spec.seed
            )
        assert estimate.policy_name == "quirky"
        assert estimate.num_realisations == spec.mc_realisations
        assert report.blocks_cached == 0

    def test_delay_point_runner(self, orchestrator):
        spec = resolve("delay-sweep/d=0.5", quick=True).with_(mc_realisations=3)
        result = orchestrator.run(spec)
        assert result.scalars["winner"] in ("lbp1", "lbp2")
        assert result.scalars["delay_per_task"] == 0.5
        assert result.scalars["lbp1_mean"] > 0


class TestSharedExecutor:
    def test_serial_and_pooled_runs_are_bit_identical(self, tmp_path):
        serial = Orchestrator(cache=None, use_cache=False).run(tiny_spec())
        with Orchestrator(
            cache=None, use_cache=False, workers=2
        ) as pooled_orchestrator:
            pooled = pooled_orchestrator.run(tiny_spec())
            assert pooled_orchestrator._owned_executor is not None
        assert pooled_orchestrator._owned_executor is None  # closed on exit
        np.testing.assert_array_equal(
            pooled.arrays["completion_times"], serial.arrays["completion_times"]
        )

    def test_external_executor_is_reused_not_closed(self):
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=2) as pool:
            orchestrator = Orchestrator(cache=None, use_cache=False, executor=pool)
            assert orchestrator.executor is pool
            orchestrator.run(tiny_spec())
            orchestrator.close()
            # Still usable after close(): the orchestrator does not own it.
            assert pool.submit(lambda: 1).result() == 1


class TestBackendOverride:
    def test_backend_override_caches_separately(self, orchestrator):
        spec = tiny_spec(mc_realisations=40)
        reference = orchestrator.run(spec)
        vectorized = orchestrator.run(spec, backend="vectorized")
        assert not vectorized.from_cache
        assert vectorized.scalars["backend"] == "vectorized"
        assert reference.spec_hash != vectorized.spec_hash
        # Each backend hits its own cache entry on the second run.
        assert orchestrator.run(spec).from_cache
        assert orchestrator.run(spec, backend="vectorized").from_cache

    def test_spec_level_backend_is_honoured(self, orchestrator):
        result = orchestrator.run(tiny_spec(backend="vectorized"))
        assert result.scalars["backend"] == "vectorized"

    def test_unknown_backend_fails_fast(self, orchestrator):
        with pytest.raises(ValueError, match="unknown execution backend"):
            orchestrator.run(tiny_spec(), backend="fpga")

    def test_backend_rejected_for_experiment_kinds(self, orchestrator):
        from repro.scenarios.orchestrator import BACKEND_AWARE_KINDS

        assert "mc_point" in BACKEND_AWARE_KINDS
        with pytest.raises(ValueError, match="cannot honour backend"):
            orchestrator.run("fig4", quick=True, backend="vectorized")

    def test_delay_point_honours_backend(self, orchestrator):
        spec = tiny_spec(kind="delay_point", policy=None, mc_realisations=30)
        result = orchestrator.run(spec, backend="vectorized")
        assert result.kind == "delay_point"
        assert np.isfinite(result.scalars["headline"])
