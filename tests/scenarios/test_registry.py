"""Registry completeness: every paper artefact and family resolves."""

from __future__ import annotations

import pytest

from repro.scenarios import registry
from repro.scenarios.orchestrator import runner_kinds
from repro.scenarios.spec import ScenarioSpec


class TestPaperArtefacts:
    def test_every_paper_artefact_is_registered(self):
        for name in registry.PAPER_ARTEFACTS:
            assert name in registry.scenario_names()

    @pytest.mark.parametrize("name", registry.PAPER_ARTEFACTS)
    def test_artefact_resolves_to_runnable_spec(self, name):
        for quick in (False, True):
            spec = registry.resolve(name, quick=quick)
            assert isinstance(spec, ScenarioSpec)
            assert spec.name == name
            assert spec.kind in runner_kinds()

    @pytest.mark.parametrize("name", registry.PAPER_ARTEFACTS)
    def test_quick_variant_is_genuinely_reduced(self, name):
        full = registry.resolve(name, quick=False)
        quick = registry.resolve(name, quick=True)
        assert full.content_hash != quick.content_hash

    def test_artefact_specs_use_paper_system(self):
        spec = registry.resolve("fig3")
        params = spec.system.to_parameters()
        assert params.service_rates == (1.08, 1.86)
        assert spec.workload == (100, 60)


class TestFamilies:
    def test_expected_families_present(self):
        for name in ("delay-sweep", "failure-sweep", "multinode", "churn"):
            assert name in registry.family_names()

    @pytest.mark.parametrize("name", ["delay-sweep", "failure-sweep", "multinode", "churn"])
    def test_family_expands_to_unique_runnable_points(self, name):
        family = registry.get_family(name)
        points = family.expand(quick=True)
        assert len(points) >= 3
        hashes = {p.content_hash for p in points}
        assert len(hashes) == len(points)
        for point in points:
            assert point.kind in runner_kinds()
            assert point.name.startswith(f"{name}/")

    def test_quick_points_differ_from_full_points(self):
        family = registry.get_family("delay-sweep")
        full = {p.content_hash for p in family.expand(quick=False)}
        quick = {p.content_hash for p in family.expand(quick=True)}
        assert full.isdisjoint(quick)

    def test_family_point_resolvable_by_name(self):
        spec = registry.resolve("delay-sweep/d=0.5", quick=True)
        assert spec.kind == "delay_point"
        assert spec.system.delay.mean_delay_per_task == 0.5

    def test_multinode_family_goes_beyond_two_nodes(self):
        sizes = {
            p.system.num_nodes for p in registry.get_family("multinode").expand(True)
        }
        assert sizes - {1, 2}


class TestErrors:
    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            registry.resolve("fig9")

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError, match="unknown scenario family"):
            registry.get_family("no-such-family")

    def test_unknown_family_point_raises(self):
        with pytest.raises(KeyError):
            registry.resolve("delay-sweep/d=99")
