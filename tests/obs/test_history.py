"""The run-history ledger: append, query, crash/corruption tolerance."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.history import (
    HISTORY_SCHEMA_VERSION,
    RunLedger,
    default_history_root,
    history_enabled,
    record_distributed_report,
)


@pytest.fixture
def ledger(tmp_path) -> RunLedger:
    return RunLedger(tmp_path / "history")


def _run(ledger, **fields):
    record = {
        "kind": "run",
        "scenario": "smoke",
        "backend": "reference",
        "executor": "InlineExecutor",
        "effective_cpus": 1,
        "wall_seconds": 0.5,
    }
    record.update(fields)
    return ledger.append(record)


class TestAppendAndQuery:
    def test_append_stamps_schema_id_and_timestamp(self, ledger):
        record = _run(ledger)
        assert record["v"] == HISTORY_SCHEMA_VERSION
        assert len(record["id"]) == 16
        assert record["ts"] > 0

    def test_roundtrip_preserves_fields(self, ledger):
        _run(ledger, scenario="fig3", wall_seconds=1.25)
        (record,) = ledger.query()
        assert record["scenario"] == "fig3"
        assert record["wall_seconds"] == 1.25

    def test_query_newest_first_with_limit(self, ledger):
        for i in range(5):
            _run(ledger, scenario=f"s{i}")
        newest = ledger.query(limit=2)
        assert [r["scenario"] for r in newest] == ["s4", "s3"]
        oldest = ledger.query(newest_first=False)
        assert oldest[0]["scenario"] == "s0"

    def test_query_filters_on_fields(self, ledger):
        _run(ledger, backend="reference")
        _run(ledger, backend="vectorized")
        assert len(ledger.query(backend="vectorized")) == 1
        assert ledger.query(backend="fpga") == []

    def test_query_filters_accept_query_string_values(self, ledger):
        # The service forwards query-string filters as strings; equality
        # must still match numeric record fields.
        _run(ledger, effective_cpus=4)
        assert len(ledger.query(effective_cpus="4")) == 1

    def test_time_range_filters(self, ledger):
        early = _run(ledger)
        late = _run(ledger)
        late["ts"] = early["ts"] + 100.0  # stamps are monotonic enough
        assert ledger.get(early["id"]) is not None
        assert [r["id"] for r in ledger.query(since=early["ts"])] != []

    def test_get_by_id(self, ledger):
        record = _run(ledger)
        assert ledger.get(record["id"])["id"] == record["id"]
        assert ledger.get("nope") is None

    def test_len_counts_everything(self, ledger):
        for _ in range(3):
            _run(ledger)
        assert len(ledger) == 3


class TestSegmentsAndCompaction:
    def test_appends_roll_into_sealed_segments(self, tmp_path):
        ledger = RunLedger(tmp_path / "history", max_segment_bytes=400)
        for i in range(12):
            _run(ledger, scenario=f"s{i}")
        sealed = [
            p for p in ledger.segments() if p.name.startswith("segment-")
        ]
        assert sealed, "small max_segment_bytes must seal segments"
        assert len(ledger) == 12
        assert ledger.query(limit=1)[0]["scenario"] == "s11"

    def test_prune_keep_newest(self, ledger):
        for i in range(6):
            _run(ledger, scenario=f"s{i}")
        kept, dropped = ledger.prune(keep=2)
        assert (kept, dropped) == (2, 4)
        assert [r["scenario"] for r in ledger.query()] == ["s5", "s4"]

    def test_prune_by_age(self, ledger):
        old = _run(ledger)
        cutoff = old["ts"] + 0.001
        fresh = _run(ledger)
        fresh_raw = ledger.current_path.read_text().splitlines()
        # Rewrite the newest record's ts to be clearly past the cutoff.
        doctored = json.loads(fresh_raw[-1])
        doctored["ts"] = cutoff + 100.0
        ledger.current_path.write_text(
            fresh_raw[0] + "\n" + json.dumps(doctored) + "\n"
        )
        kept, dropped = ledger.prune(older_than=cutoff)
        assert (kept, dropped) == (1, 1)
        assert ledger.query()[0]["id"] == fresh["id"]


class TestCorruptionTolerance:
    def test_truncated_trailing_line_is_skipped_not_fatal(self, ledger):
        full = _run(ledger)
        with open(ledger.current_path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "run", "scenario": "torn')  # crash mid-write
        records = ledger.query()
        assert [r["id"] for r in records] == [full["id"]]
        # And appending afterwards still works; the torn line stays dead.
        fresh = _run(ledger)
        assert {r["id"] for r in ledger.query()} == {full["id"], fresh["id"]}

    def test_binary_garbage_line_is_skipped(self, ledger):
        _run(ledger)
        with open(ledger.current_path, "ab") as handle:
            handle.write(b"\x00\xff garbage \xfe\n")
        _run(ledger)
        assert len(ledger.query()) == 2


class TestConcurrentAppends:
    def test_two_processes_lose_no_records(self, tmp_path):
        """Two writer processes interleave appends; every record survives."""
        root = tmp_path / "history"
        script = (
            "import sys\n"
            "from repro.obs.history import RunLedger\n"
            "ledger = RunLedger(sys.argv[1])\n"
            "tag = sys.argv[2]\n"
            "for i in range(50):\n"
            "    ledger.append({'kind': 'run', 'scenario': f'{tag}-{i}'})\n"
        )
        src_root = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ, PYTHONPATH=str(src_root))
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(root), tag], env=env
            )
            for tag in ("a", "b")
        ]
        for proc in procs:
            assert proc.wait(timeout=60) == 0
        ledger = RunLedger(root)
        scenarios = {r["scenario"] for r in ledger.query()}
        assert scenarios == {f"a-{i}" for i in range(50)} | {
            f"b-{i}" for i in range(50)
        }
        # Every line is valid JSON — no torn interleaved writes.
        for line in ledger.current_path.read_text().splitlines():
            json.loads(line)


class TestEnvironmentResolution:
    def test_history_dir_env_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path / "explicit"))
        assert default_history_root() == tmp_path / "explicit"

    def test_cache_dir_fallback(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_HISTORY_DIR", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert default_history_root() == tmp_path / "cache" / "history"

    def test_disable_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_HISTORY", "0")
        assert history_enabled() is False
        monkeypatch.setenv("REPRO_HISTORY", "1")
        assert history_enabled() is True


class TestRecordBuilders:
    def test_distributed_report_records(self, ledger):
        payload = {
            "scenario": "mc-scaling",
            "backend": "reference",
            "shards": 8,
            "shard_block": 32,
            "realisations": 2000,
            "seed": 1234,
            "quick": False,
            "summary": {"effective_cpus": 1},
            "timings": [
                {
                    "worker_count": 1,
                    "wall_seconds": 2.0,
                    "throughput": 1000.0,
                    "mean_completion_time": 115.0,
                },
                {
                    "worker_count": 2,
                    "wall_seconds": 2.2,
                    "throughput": 909.0,
                    "mean_completion_time": 115.0,
                    "skipped": True,
                },
            ],
        }
        records = record_distributed_report(payload, ledger=ledger)
        assert len(records) == 2
        assert all(r["kind"] == "bench" for r in records)
        assert records[0]["worker_count"] == 1
        assert records[0]["skipped"] is False
        assert records[1]["skipped"] is True
        assert records[1]["effective_cpus"] == 1

    def test_engine_runs_record_automatically(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path / "auto"))
        from repro.montecarlo.engine import EngineRequest, run_engine
        from repro.scenarios.registry import resolve

        run_engine(EngineRequest(spec=resolve("smoke", quick=True)))
        records = RunLedger(tmp_path / "auto").query()
        assert len(records) == 1
        record = records[0]
        assert record["kind"] == "run"
        assert record["scenario"] == "smoke"
        assert record["spec_hash"]
        assert record["timings"]["plan_seconds"] >= 0
        assert record["effective_cpus"] >= 1

    def test_disabled_history_records_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path / "off"))
        monkeypatch.setenv("REPRO_HISTORY", "0")
        from repro.montecarlo.engine import EngineRequest, run_engine
        from repro.scenarios.registry import resolve

        run_engine(EngineRequest(spec=resolve("smoke", quick=True)))
        assert not (tmp_path / "off").exists()
