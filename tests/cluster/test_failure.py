"""Tests for the alternating failure/recovery process."""

import numpy as np
import pytest

from repro.cluster.failure import FailureRecoveryProcess
from repro.cluster.node import ComputeElement
from repro.core.parameters import NodeParameters
from repro.sim.engine import Environment


def build(env, rng, failure_rate, recovery_rate, initially_up=True, **kwargs):
    params = NodeParameters(
        service_rate=1.0,
        failure_rate=failure_rate,
        recovery_rate=recovery_rate,
        initially_up=initially_up,
    )
    node = ComputeElement(env, 0, params, rng)
    process = FailureRecoveryProcess(env, node, rng, **kwargs)
    return node, process


class TestFailureRecoveryProcess:
    def test_reliable_node_has_no_process(self, env, rng):
        node, process = build(env, rng, failure_rate=0.0, recovery_rate=0.0)
        assert process.process is None

    def test_alternation_counts_match(self, env, rng):
        node, _ = build(env, rng, failure_rate=1.0, recovery_rate=2.0)
        env.run(until=200.0)
        assert node.failures > 0
        assert abs(node.failures - node.recoveries) <= 1

    def test_callbacks_invoked(self, env, rng):
        failures, recoveries = [], []
        node, _ = build(
            env,
            rng,
            failure_rate=1.0,
            recovery_rate=1.0,
            on_failure=lambda n, t: failures.append(t),
            on_recovery=lambda n, t: recoveries.append(t),
        )
        env.run(until=50.0)
        assert len(failures) >= 1
        assert len(recoveries) >= 1
        assert all(f <= r for f, r in zip(failures, recoveries))

    def test_horizon_stops_injection(self, env, rng):
        node, _ = build(env, rng, failure_rate=5.0, recovery_rate=5.0, horizon=2.0)
        env.run(until=100.0)
        # No failure can be *started* after the horizon.
        assert all(t <= 2.0 + 1e-9 for t in [])  # structural guard
        failures_at_horizon = node.failures
        env.run()  # exhaust any remaining events
        assert node.failures == failures_at_horizon

    def test_initially_down_node_recovers(self, env, rng):
        node, _ = build(env, rng, failure_rate=0.0, recovery_rate=2.0, initially_up=False)
        assert not node.is_up
        env.run()
        assert node.is_up
        assert node.recoveries == 1

    def test_up_down_cycle_durations_statistics(self, env):
        rng = np.random.default_rng(7)
        failure_times, recovery_times = [], []
        last = {"failed_at": None}

        def on_failure(node, time):
            last["failed_at"] = time

        def on_recovery(node, time):
            recovery_times.append(time - last["failed_at"])

        node, _ = build(
            env,
            rng,
            failure_rate=0.5,
            recovery_rate=1.0,
            on_failure=on_failure,
            on_recovery=on_recovery,
        )
        env.run(until=8_000.0)
        mean_down = np.mean(recovery_times)
        assert mean_down == pytest.approx(1.0, rel=0.15)

    def test_availability_fraction_matches_steady_state(self, env):
        rng = np.random.default_rng(11)
        params = NodeParameters(service_rate=1.0, failure_rate=0.2, recovery_rate=0.4)
        node = ComputeElement(env, 0, params, rng)
        FailureRecoveryProcess(env, node, rng)

        samples = []

        def sampler(env, node):
            while True:
                yield env.timeout(1.0)
                samples.append(1.0 if node.is_up else 0.0)

        env.process(sampler(env, node))
        env.run(until=12_000.0)
        observed = np.mean(samples)
        assert observed == pytest.approx(params.availability, abs=0.05)
