"""Absorbing continuous-time Markov chains (CTMCs).

The regeneration recursion of :mod:`repro.core.completion_time` is the
paper's own route to the expected completion time.  An equivalent — and
independently implemented — route is to write the whole system as an
absorbing CTMC over states

``(k0, k1, r0, r1, z)``

(work state, remaining tasks at each node, batch-in-transit flag) and to

* solve one sparse linear system for the expected absorption time
  (cross-validates eq. (4)), and
* compute the transient distribution of the chain, whose absorbing-state
  mass is exactly the completion-time CDF of eq. (5).

The :class:`AbsorbingCTMC` class is generic (it is reused by the n-node
extension in :mod:`repro.core.multinode`); the two-node LBP-1 chain is built
by :func:`build_two_node_lbp1_chain`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import expm_multiply, spsolve
from scipy.stats import poisson

from repro.core.parameters import SystemParameters
from repro.core.state import validate_work_state

__all__ = [
    "AbsorbingCTMC",
    "CTMCBuildResult",
    "build_chain",
    "build_two_node_lbp1_chain",
]

State = Hashable
SuccessorFn = Callable[[State], Iterable[Tuple[State, float]]]
AbsorbingFn = Callable[[State], bool]


class AbsorbingCTMC:
    """A finite CTMC with at least one absorbing state.

    Parameters
    ----------
    generator:
        The (sparse) generator matrix ``Q``; rows sum to zero, off-diagonal
        entries are transition rates.
    absorbing:
        Boolean mask marking absorbing states.
    states:
        Optional list of state labels (for debugging and reporting).
    """

    def __init__(
        self,
        generator: sparse.spmatrix,
        absorbing: np.ndarray,
        states: Optional[List[State]] = None,
    ) -> None:
        generator = sparse.csr_matrix(generator)
        if generator.shape[0] != generator.shape[1]:
            raise ValueError("the generator must be square")
        absorbing = np.asarray(absorbing, dtype=bool)
        if absorbing.shape != (generator.shape[0],):
            raise ValueError("absorbing mask length must match the generator size")
        if not absorbing.any():
            raise ValueError("an absorbing CTMC needs at least one absorbing state")
        row_sums = np.abs(np.asarray(generator.sum(axis=1)).ravel())
        if np.any(row_sums > 1e-8 * max(1.0, abs(generator).max())):
            raise ValueError("generator rows must sum to zero")
        self.generator = generator
        self.absorbing = absorbing
        self.states = states

    # -- basic facts -------------------------------------------------------------

    @property
    def num_states(self) -> int:
        """Number of states of the chain."""
        return self.generator.shape[0]

    @property
    def num_transient(self) -> int:
        """Number of transient (non-absorbing) states."""
        return int((~self.absorbing).sum())

    def uniformization_rate(self) -> float:
        """The uniformization constant ``Λ = max_s |Q_ss|``."""
        return float(np.abs(self.generator.diagonal()).max())

    # -- expected absorption time ---------------------------------------------------

    def expected_absorption_time(self, start: int) -> float:
        """Expected time to absorption starting from state index ``start``.

        Solves ``(-Q_TT) t = 1`` over the transient states ``T``.
        """
        if not 0 <= start < self.num_states:
            raise IndexError(f"start index {start} out of range")
        if self.absorbing[start]:
            return 0.0
        transient = np.flatnonzero(~self.absorbing)
        q_tt = self.generator[transient][:, transient].tocsc()
        ones = np.ones(len(transient))
        times = spsolve(-q_tt, ones)
        position = int(np.searchsorted(transient, start))
        return float(times[position])

    def expected_absorption_times(self) -> np.ndarray:
        """Expected absorption time from every state (0 for absorbing states)."""
        transient = np.flatnonzero(~self.absorbing)
        result = np.zeros(self.num_states)
        if transient.size:
            q_tt = self.generator[transient][:, transient].tocsc()
            result[transient] = spsolve(-q_tt, np.ones(len(transient)))
        return result

    # -- transient analysis -------------------------------------------------------------

    def transient_distribution(
        self,
        start: int,
        times: Sequence[float],
        method: str = "uniformization",
        tolerance: float = 1e-10,
    ) -> np.ndarray:
        """State distribution ``π(t)`` for every ``t`` in ``times``.

        Parameters
        ----------
        start:
            Index of the initial state (probability 1 at ``t = 0``).
        times:
            Non-negative evaluation times.
        method:
            ``"uniformization"`` (default), ``"expm"``
            (:func:`scipy.sparse.linalg.expm_multiply`) or ``"ode"``
            (:func:`scipy.integrate.solve_ivp` on the Kolmogorov forward
            equations).
        tolerance:
            Truncation tolerance of the uniformization series.
        """
        times_arr = np.asarray(times, dtype=float)
        if np.any(times_arr < 0):
            raise ValueError("times must be non-negative")
        if not 0 <= start < self.num_states:
            raise IndexError(f"start index {start} out of range")
        if method == "uniformization":
            return self._transient_uniformization(start, times_arr, tolerance)
        if method == "expm":
            return self._transient_expm(start, times_arr)
        if method == "ode":
            return self._transient_ode(start, times_arr)
        raise ValueError(f"unknown method {method!r}")

    def absorption_cdf(
        self,
        start: int,
        times: Sequence[float],
        method: str = "uniformization",
        tolerance: float = 1e-10,
    ) -> np.ndarray:
        """``P(T_absorb <= t)`` for every ``t`` — the completion-time CDF."""
        distribution = self.transient_distribution(
            start, times, method=method, tolerance=tolerance
        )
        return distribution[:, self.absorbing].sum(axis=1)

    # -- internals ----------------------------------------------------------------------

    def _transient_uniformization(
        self, start: int, times: np.ndarray, tolerance: float
    ) -> np.ndarray:
        rate = self.uniformization_rate()
        n = self.num_states
        if rate == 0.0:
            result = np.zeros((len(times), n))
            result[:, start] = 1.0
            return result
        # Jump matrix of the uniformized discrete-time chain.
        jump = sparse.identity(n, format="csr") + self.generator / rate

        t_max = float(times.max(initial=0.0))
        horizon = rate * t_max
        # Series length: cover the Poisson bulk plus a wide safety margin.
        n_terms = int(np.ceil(horizon + 10.0 * np.sqrt(horizon + 1.0) + 20.0))
        weights = poisson.pmf(np.arange(n_terms + 1)[None, :], rate * times[:, None])

        result = np.zeros((len(times), n))
        vector = np.zeros(n)
        vector[start] = 1.0
        remaining = np.ones(len(times))
        for k in range(n_terms + 1):
            w = weights[:, k]
            result += w[:, None] * vector[None, :]
            remaining -= w
            if np.all(remaining < tolerance):
                break
            vector = jump.T.dot(vector)
        # Renormalise the truncated series (the missing mass is <= tolerance
        # for every evaluation time unless the loop exhausted n_terms).
        totals = result.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return result / totals

    def _transient_expm(self, start: int, times: np.ndarray) -> np.ndarray:
        vector = np.zeros(self.num_states)
        vector[start] = 1.0
        transposed = sparse.csc_matrix(self.generator.T)
        result = np.empty((len(times), self.num_states))
        for i, t in enumerate(times):
            if t == 0.0:
                result[i] = vector
            else:
                result[i] = expm_multiply(transposed * t, vector)
        return result

    def _transient_ode(self, start: int, times: np.ndarray) -> np.ndarray:
        from scipy.integrate import solve_ivp

        vector = np.zeros(self.num_states)
        vector[start] = 1.0
        transposed = sparse.csr_matrix(self.generator.T)

        order = np.argsort(times)
        sorted_times = times[order]
        t_final = float(sorted_times[-1]) if len(sorted_times) else 0.0
        if t_final == 0.0:
            return np.tile(vector, (len(times), 1))

        solution = solve_ivp(
            lambda _t, p: transposed.dot(p),
            t_span=(0.0, t_final),
            y0=vector,
            t_eval=np.unique(sorted_times),
            method="LSODA",
            rtol=1e-8,
            atol=1e-10,
        )
        lookup = {t: solution.y[:, i] for i, t in enumerate(solution.t)}
        result = np.empty((len(times), self.num_states))
        unique_sorted = np.unique(sorted_times)
        for i, t in enumerate(times):
            # Map each requested time to the nearest evaluated time (they are
            # identical up to floating-point representation).
            nearest = unique_sorted[np.argmin(np.abs(unique_sorted - t))]
            result[i] = lookup[nearest]
        return result


@dataclass
class CTMCBuildResult:
    """Result of a state-space exploration: the chain plus the start index."""

    chain: AbsorbingCTMC
    start_index: int
    state_index: Dict[State, int]

    def __iter__(self):
        # Allow ``chain, start = build_...`` unpacking.
        yield self.chain
        yield self.start_index


def build_chain(
    start: State, successors: SuccessorFn, is_absorbing: AbsorbingFn
) -> CTMCBuildResult:
    """Breadth-first exploration of the reachable state space.

    Parameters
    ----------
    start:
        Initial state.
    successors:
        Function mapping a state to an iterable of ``(next_state, rate)``
        pairs; it is never called on absorbing states.
    is_absorbing:
        Predicate marking absorbing states.
    """
    index: Dict[State, int] = {start: 0}
    order: List[State] = [start]
    rows: List[int] = []
    cols: List[int] = []
    rates: List[float] = []

    frontier = [start]
    while frontier:
        state = frontier.pop()
        i = index[state]
        if is_absorbing(state):
            continue
        total = 0.0
        for nxt, rate in successors(state):
            if rate <= 0:
                continue
            if nxt not in index:
                index[nxt] = len(order)
                order.append(nxt)
                frontier.append(nxt)
            j = index[nxt]
            rows.append(i)
            cols.append(j)
            rates.append(float(rate))
            total += float(rate)
        if total <= 0.0:
            raise ValueError(
                f"non-absorbing state {state!r} has no outgoing transitions; "
                "the workload cannot complete under these parameters"
            )
        rows.append(i)
        cols.append(i)
        rates.append(-total)

    n = len(order)
    generator = sparse.coo_matrix((rates, (rows, cols)), shape=(n, n)).tocsr()
    absorbing = np.array([is_absorbing(state) for state in order], dtype=bool)
    chain = AbsorbingCTMC(generator, absorbing, states=order)
    return CTMCBuildResult(chain=chain, start_index=0, state_index=index)


def build_two_node_lbp1_chain(
    params: SystemParameters,
    tasks: Sequence[int],
    in_transit: int = 0,
    destination: int = 1,
    initial_state: Sequence[int] = (1, 1),
    transit_rate: Optional[float] = None,
) -> CTMCBuildResult:
    """The absorbing CTMC of the two-node system under LBP-1.

    States are ``(k0, k1, r0, r1, z)`` with ``z = 1`` while the initial batch
    of ``in_transit`` tasks is still on the network.  Absorption corresponds
    to ``r0 = r1 = 0`` and ``z = 0``: every task has been executed.
    """
    params.require_two_nodes()
    k0, k1 = validate_work_state(initial_state, 2)
    m0, m1 = int(tasks[0]), int(tasks[1])
    if m0 < 0 or m1 < 0:
        raise ValueError("task counts must be non-negative")
    batch = int(in_transit)
    if batch < 0:
        raise ValueError("in_transit must be >= 0")
    if destination not in (0, 1):
        raise IndexError("destination must be 0 or 1")

    if batch > 0:
        if transit_rate is None:
            transit_rate = params.transfer_rate(1 - destination, destination, batch)
        if not np.isfinite(transit_rate):
            # Instantaneous arrival: fold the batch into the destination load.
            if destination == 0:
                m0 += batch
            else:
                m1 += batch
            batch = 0
    lam_d = params.service_rates
    lam_f = params.failure_rates
    lam_r = params.recovery_rates

    def successors(state):
        s0, s1, r0, r1, z = state
        moves = []
        if s0 == 1 and r0 > 0:
            moves.append(((s0, s1, r0 - 1, r1, z), lam_d[0]))
        if s1 == 1 and r1 > 0:
            moves.append(((s0, s1, r0, r1 - 1, z), lam_d[1]))
        if s0 == 1 and lam_f[0] > 0:
            moves.append(((0, s1, r0, r1, z), lam_f[0]))
        if s1 == 1 and lam_f[1] > 0:
            moves.append(((s0, 0, r0, r1, z), lam_f[1]))
        if s0 == 0 and lam_r[0] > 0:
            moves.append(((1, s1, r0, r1, z), lam_r[0]))
        if s1 == 0 and lam_r[1] > 0:
            moves.append(((s0, 1, r0, r1, z), lam_r[1]))
        if z == 1:
            arrived = (
                (s0, s1, r0 + batch, r1, 0)
                if destination == 0
                else (s0, s1, r0, r1 + batch, 0)
            )
            moves.append((arrived, transit_rate))
        return moves

    def is_absorbing(state):
        _s0, _s1, r0, r1, z = state
        return r0 == 0 and r1 == 0 and z == 0

    start_state = (k0, k1, m0, m1, 1 if batch > 0 else 0)
    return build_chain(start_state, successors, is_absorbing)
