"""The one Monte-Carlo engine: plan → execute → merge, for every run.

Historically the repo grew three divergent Monte-Carlo code paths: a
serial per-realisation loop, a per-realisation process pool, and the
block-sharded distributed runner.  Only the last had exact mergeable
statistics, resumable block caching and shard progress events.  This
module makes that pipeline the *only* one:

1. **plan** — the ensemble is partitioned into fixed-size seed blocks
   (:func:`repro.distributed.plan.plan_blocks`); block ``j``'s random
   stream derives from the master seed and ``j`` alone, so the merged
   sample is invariant to how blocks are grouped or executed;
2. **execute** — blocks already in the :class:`ShardStore` are served from
   disk; the rest are grouped into shards and dispatched through a
   :class:`~repro.distributed.scheduler.ShardScheduler` over the chosen
   :class:`~repro.distributed.executors.ShardExecutor`.  A *serial* run is
   simply one inline slot; a *pooled* run is a process pool (or a wrapped
   shared :class:`concurrent.futures.Executor`); a *distributed* run is
   the service's remote worker board.  Backends execute whole blocks per
   :meth:`run_batch` call — the vectorized kernel advances a block's
   realisations in one array program instead of per-realisation dispatch;
3. **merge** — per-block :class:`~repro.montecarlo.statistics
   .RunningStatistics` states merge exactly (Shewchuk sums), completion
   times concatenate in block order, and the merged accumulator renders
   the summary.  Mean, variance, confidence interval and percentiles are
   therefore bit-identical (``==``) across serial, pooled, vectorized and
   any-shard-count execution of the same request.

Requests that a :class:`~repro.scenarios.spec.ScenarioSpec` can describe
(built-in policy, no bespoke ``system_kwargs``/horizon) are normalised to
one — the *identity spec* — which keys the shard store: every such run,
sharded or not, reads and writes the block cache, so interrupted runs
resume and grown ensembles compute only the delta.  Anything else runs in
*ad-hoc* mode: same pipeline, same merge, pickled (not JSON) work items,
no block cache.
"""

from __future__ import annotations

import logging
import warnings
from dataclasses import dataclass, field
from statistics import median
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence

from repro.distributed.executors import ShardExecutor, resolve_executor
from repro.distributed.plan import (
    DEFAULT_AMORTIZATION,
    SeedBlock,
    adaptive_shard_count,
    block_key,
    plan_blocks,
    plan_shards,
    shard_plan_key,
)
from repro.distributed.scheduler import ShardScheduler
from repro.distributed.work import (
    adhoc_wire_payload,
    int_seed,
    make_adhoc_item,
    make_work_item,
    policy_spec_of,
)
from repro.montecarlo.runner import MonteCarloEstimate
from repro.montecarlo.statistics import RunningStatistics
from repro.obs import trace
from repro.obs.metrics import REGISTRY
from repro.scenarios.spec import DEFAULT_SHARD_BLOCK, ScenarioSpec, SystemSpec

logger = logging.getLogger(__name__)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.parameters import SystemParameters
    from repro.distributed.store import ShardStore
    from repro.sim.rng import SeedLike


_ENGINE_RUNS = REGISTRY.counter(
    "repro_engine_runs_total", "Monte-Carlo ensembles run through the engine."
)
_ENGINE_BLOCKS = REGISTRY.counter(
    "repro_engine_blocks_total",
    "Seed blocks handled by the engine, by outcome.",
    labelnames=("outcome",),
)
_ENGINE_PHASE_SECONDS = REGISTRY.histogram(
    "repro_engine_phase_seconds",
    "Wall-clock seconds spent in each engine phase.",
    labelnames=("phase",),
)
_BLOCK_COMPUTE_SECONDS = REGISTRY.histogram(
    "repro_engine_block_compute_seconds",
    "Backend compute seconds per freshly computed seed block.",
)


@dataclass
class EngineRequest:
    """Everything the engine needs for one Monte-Carlo ensemble.

    Either ``spec`` describes the run completely (the orchestrator and the
    distributed runner pass effective :class:`ScenarioSpec` objects), or
    the ad-hoc fields — ``params``/``policy``/``workload``/
    ``num_realisations``/``seed``/``backend`` — do.  The remaining fields
    tune execution without changing the sample:

    executor / workers:
        Where shards run: ``None`` (inline), an executor name
        (``inline``/``process``), a live :class:`ShardExecutor`, or a
        plain :class:`concurrent.futures.Executor` to share.  Instances
        are left open; named executors are closed after the run.
    shards:
        Work items to dispatch.  ``None`` defaults to the spec's shard
        count when one is pinned (``spec.shards >= 1``), and otherwise to
        *adaptive sizing*: the planner calibrates the per-block compute
        cost (from the shard store's recorded ``wall_seconds``, or by
        dispatching a small probe wave of single-block shards) and groups
        the remaining blocks so each dispatch amortizes at least
        ``amortization ×`` its measured round-trip overhead.  Sizing only
        regroups blocks — the sample is identical either way.
    amortization:
        Target compute-to-overhead ratio per dispatch for adaptive sizing
        (ignored when a shard count is pinned).
    block_size:
        Realisations per seed block (ad-hoc runs only; spec runs use
        ``spec.shard_block``).  Part of the sample's identity.
    store / refresh:
        The shard-level block cache.  ``refresh`` recomputes every block
        but still persists the results (the ``--force`` repair path).
    """

    params: Optional["SystemParameters"] = None
    policy: Any = None
    workload: Sequence[int] = ()
    num_realisations: int = 0
    seed: "SeedLike" = None
    backend: Any = None
    horizon: Optional[float] = None
    system_kwargs: Dict[str, Any] = field(default_factory=dict)
    spec: Optional[ScenarioSpec] = None
    confidence_level: float = 0.95
    block_size: Optional[int] = None
    shards: Optional[int] = None
    executor: Any = None
    workers: Optional[int] = None
    store: Optional["ShardStore"] = None
    refresh: bool = False
    assignment: str = "least-loaded"
    max_attempts: int = 3
    shard_timeout: Optional[float] = None
    slot_wait: float = 60.0
    amortization: float = DEFAULT_AMORTIZATION
    on_event: Optional[Callable[[Dict[str, Any]], None]] = None


@dataclass
class EngineReport:
    """A merged estimate plus the execution provenance of the run."""

    estimate: MonteCarloEstimate
    stats: RunningStatistics
    blocks_total: int
    blocks_cached: int
    shards_dispatched: int
    wall_seconds: float
    slot_completed: Dict[str, int] = field(default_factory=dict)
    #: Phase timing breakdown: ``plan_seconds`` (block planning + cache
    #: serving), ``execute_seconds`` (scheduler wall-clock),
    #: ``merge_seconds``, ``block_compute_seconds`` (sum of per-block
    #: backend compute over freshly computed blocks, measured where each
    #: block ran) and ``dispatch_overhead_seconds`` — execute wall-clock
    #: minus compute divided over the slots that worked, i.e. an estimate
    #: of what scheduling/transport cost on top of the compute itself.
    #: The attribution ledger's keys (see :attr:`attribution`) are folded
    #: in too.
    timings: Dict[str, float] = field(default_factory=dict)
    #: The overhead ledger: wall-equivalent seconds per category, built
    #: from the scheduler's per-shard attribution records.  Summed
    #: per-shard seconds are divided by the peak number of concurrently
    #: in-flight shards, so ``plan + wire + deserialize + compute +
    #: dispatch + idle + merge`` ≈ the run's wall clock.
    #: ``queue_wait_seconds`` is reported for visibility but *excluded*
    #: from that identity — a queued shard waits while the slots are busy
    #: with other shards, so its wait overlaps time already attributed.
    attribution: Dict[str, float] = field(default_factory=dict)
    #: Raw per-shard attribution records (shard index → seconds by
    #: category), as filed by the scheduler.
    shard_attribution: Dict[int, Dict[str, float]] = field(default_factory=dict)
    #: Adaptive-sizing provenance (empty for pinned shard counts): the
    #: calibrated per-block compute cost and per-dispatch round-trip
    #: overhead, how many probe/main shards were dispatched and the
    #: resulting blocks-per-shard grouping.
    sizing: Dict[str, float] = field(default_factory=dict)

    @property
    def blocks_computed(self) -> int:
        return self.blocks_total - self.blocks_cached


def _synthesize_identity(
    request: EngineRequest,
    master_seed: Any,
    num_realisations: int,
    block_size: int,
) -> Optional[ScenarioSpec]:
    """The request as a :class:`ScenarioSpec`, or ``None`` if inexpressible.

    A synthesized identity makes the run spec-described: JSON work items,
    shard-store keys, and a master seed collapsed to an integer exactly as
    the orchestrator's sharded path always did.  Anything the spec schema
    cannot carry — a horizon, bespoke ``system_kwargs``, a custom policy or
    backend instance, pairwise delay overrides — falls back to ad-hoc mode.
    """
    if request.horizon is not None or request.system_kwargs:
        return None
    backend = request.backend
    if backend is None:
        backend_name = "reference"
    elif isinstance(backend, str):
        backend_name = backend
    else:
        return None  # a live backend instance has no stable name/identity
    try:
        policy = policy_spec_of(request.policy)
    except ValueError:
        return None
    system = SystemSpec.from_parameters(request.params)
    if system.to_parameters() != request.params:
        return None  # e.g. pairwise delay overrides the spec cannot express
    return ScenarioSpec(
        name="engine",
        kind="mc_point",
        system=system,
        workload=tuple(int(m) for m in request.workload),
        policy=policy,
        mc_realisations=num_realisations,
        seed=int_seed(master_seed),
        backend=backend_name,
        shards=0,
        shard_block=block_size,
    )


def run_engine(request: EngineRequest) -> EngineReport:
    """Run one Monte-Carlo ensemble through the unified pipeline."""
    started = perf_counter()

    spec = request.spec
    if spec is not None:
        num_realisations = spec.mc_realisations
        block_size = spec.shard_block
        workload = tuple(spec.workload)
        master_seed: Any = spec.seed
        identity: Optional[ScenarioSpec] = spec
    else:
        num_realisations = int(request.num_realisations)
        block_size = (
            int(request.block_size)
            if request.block_size is not None
            else DEFAULT_SHARD_BLOCK
        )
        workload = tuple(int(m) for m in request.workload)
        master_seed = request.seed
        if master_seed is None:
            # "No seed" means fresh entropy — draw it once so every block
            # (and every executor slot) shares one master, and so the
            # synthesized identity cannot alias seed=0.
            import numpy as np

            master_seed = np.random.SeedSequence()
        identity = _synthesize_identity(
            request, master_seed, num_realisations, block_size
        )

    if num_realisations < 1:
        raise ValueError(
            f"num_realisations must be >= 1, got {num_realisations!r}"
        )

    import numpy as np

    _ENGINE_RUNS.inc()
    plan_started = perf_counter()
    with trace.span("engine.plan", realisations=num_realisations):
        blocks = plan_blocks(num_realisations, block_size)
        store = request.store if identity is not None else None
        plan_key = shard_plan_key(identity) if store is not None else None

        # -- plan: serve cached blocks, collect the missing ones -----------
        merged_blocks: Dict[int, Dict[str, Any]] = {}
        missing: List[SeedBlock] = []
        with trace.span("engine.cache_serve"):
            for block in blocks:
                payload = (
                    store.get(block_key(plan_key, block))
                    if store is not None and not request.refresh
                    else None
                )
                if payload is not None:
                    merged_blocks[block.index] = payload
                else:
                    missing.append(block)
        _ENGINE_BLOCKS.labels(outcome="cached").inc(len(merged_blocks))
        if merged_blocks and request.on_event is not None:
            request.on_event(
                {
                    "event": "cached",
                    "blocks_cached": len(merged_blocks),
                    "blocks_total": len(blocks),
                }
            )
    plan_seconds = perf_counter() - plan_started
    _ENGINE_PHASE_SECONDS.labels(phase="plan").observe(plan_seconds)

    # -- execute: dispatch the missing blocks through the scheduler --------
    num_shards = request.shards
    if num_shards is None and spec is not None and spec.shards >= 1:
        num_shards = spec.shards
    # Nobody pinned a shard count: let the planner size dispatches from
    # measured block/round-trip costs instead of one item per block.
    adaptive = num_shards is None
    slot_completed: Dict[str, int] = {}
    # Mutable cell: absorb_shard (a closure invoked from the scheduler
    # loop) accumulates per-block backend compute time into it.
    compute_seconds = [0.0]
    sizing: Dict[str, float] = {}
    shards_dispatched = 0
    executor_label: Optional[str] = None
    execute_started = perf_counter()
    if missing:
        fixed_shards = (
            None if adaptive else plan_shards(missing, max(1, num_shards))
        )

        if identity is not None:
            spec_dict = identity.to_dict()
            task_id = (plan_key or shard_plan_key(identity))[:16]

            def make_items(shards) -> Dict[int, Dict[str, Any]]:
                return {
                    shard.index: make_work_item(
                        item_id="",  # the scheduler stamps a fresh id per attempt
                        task_id=task_id,
                        shard_index=shard.index,
                        spec_dict=spec_dict,
                        blocks=list(shard.blocks),
                        confidence_level=request.confidence_level,
                    )
                    for shard in shards
                }
        else:
            payload = {
                "params": request.params,
                "policy": request.policy,
                "workload": workload,
                "seed": master_seed,
                "backend": request.backend,
                "horizon": request.horizon,
                "system_kwargs": dict(request.system_kwargs),
            }

            def make_items(shards) -> Dict[int, Dict[str, Any]]:
                return {
                    shard.index: make_adhoc_item(
                        item_id="",
                        task_id="adhoc",
                        shard_index=shard.index,
                        payload=payload,
                        blocks=list(shard.blocks),
                        confidence_level=request.confidence_level,
                    )
                    for shard in shards
                }

        def absorb_shard(shard_index: int, shard_result: Dict[str, Any]) -> None:
            # Merge and persist each shard the moment it completes, inside
            # the scheduler loop: an interrupted or partially-failed run
            # keeps every block that did finish — the resume guarantee.
            for block_payload in shard_result["blocks"]:
                merged_blocks[int(block_payload["index"])] = block_payload
                compute = block_payload.get("wall_seconds")
                if compute is not None:
                    compute_seconds[0] += float(compute)
                    _BLOCK_COMPUTE_SECONDS.observe(float(compute))
                _ENGINE_BLOCKS.labels(outcome="computed").inc()
                if store is not None:
                    block = SeedBlock(
                        index=int(block_payload["index"]),
                        start=int(block_payload["start"]),
                        stop=int(block_payload["stop"]),
                    )
                    store.put(block_key(plan_key, block), block_payload)

        # The shard store's recorded per-block compute times calibrate
        # adaptive sizing without a probe; snapshot them before dispatch
        # (absorb_shard grows merged_blocks as results arrive).
        cached_costs = [
            float(payload["wall_seconds"])
            for payload in merged_blocks.values()
            if payload.get("wall_seconds")
        ]

        resolved = resolve_executor(
            request.executor,
            workers=request.workers,
            num_items=len(missing) if adaptive else len(fixed_shards),
        )
        if identity is None and getattr(resolved, "transport", "pickle") == "json":
            # An ad-hoc run can still travel if its payload renders to
            # pure JSON (dict params + registered-policy reference).
            # Rebinding `payload` here retargets the make_items closure —
            # every dispatched item ships the wire form.
            wire_payload = adhoc_wire_payload(payload)
            if wire_payload is None:
                raise ValueError(
                    "this run cannot be made wire-safe (a live backend "
                    "instance, an unregistered custom policy, non-JSON "
                    "system kwargs, or a spawned SeedSequence master "
                    "seed), so it cannot travel to JSON-transport "
                    "executors such as the remote worker board"
                )
            payload = wire_payload
        # Close only executors the engine resolved itself — never instances
        # the caller handed in, never the persistent shared warm pools.
        owns_executor = not isinstance(
            request.executor, ShardExecutor
        ) and not getattr(resolved, "persistent", False)
        executor_label = type(resolved).__name__
        scheduler = ShardScheduler(
            resolved,
            assignment=request.assignment,
            max_attempts=request.max_attempts,
            shard_timeout=request.shard_timeout,
            slot_wait=request.slot_wait,
            on_event=request.on_event,
            on_result=absorb_shard,
        )
        try:
            with trace.span(
                "engine.execute",
                shards=0 if adaptive else len(fixed_shards),
                adaptive=adaptive,
                executor=type(resolved).__name__,
            ):
                if fixed_shards is not None:
                    scheduler.run(make_items(fixed_shards))
                    shards_dispatched = len(fixed_shards)
                else:
                    shards_dispatched, sizing = _execute_adaptive(
                        scheduler=scheduler,
                        executor=resolved,
                        missing=missing,
                        make_items=make_items,
                        merged_blocks=merged_blocks,
                        cached_costs=cached_costs,
                        amortization=request.amortization,
                    )
        finally:
            if owns_executor:
                resolved.close()
        slot_completed = dict(scheduler.slot_completed)
        shard_attribution = dict(scheduler.shard_attribution)
        peak_in_flight = scheduler.peak_in_flight
    else:
        shard_attribution = {}
        peak_in_flight = 0
    execute_seconds = perf_counter() - execute_started
    if missing:
        _ENGINE_PHASE_SECONDS.labels(phase="execute").observe(execute_seconds)

    # -- merge: exact accumulators, block-ordered concatenation ------------
    merge_started = perf_counter()
    with trace.span("engine.merge", blocks=len(blocks)):
        ordered = [merged_blocks[block.index] for block in blocks]
        times = np.concatenate(
            [
                np.asarray(payload["completion_times"], dtype=float)
                for payload in ordered
            ]
        )
        stats = RunningStatistics.merged(
            RunningStatistics.from_dict(payload["stats"]) for payload in ordered
        )
    merge_seconds = perf_counter() - merge_started
    _ENGINE_PHASE_SECONDS.labels(phase="merge").observe(merge_seconds)

    estimate = MonteCarloEstimate(
        policy_name=str(ordered[0]["policy"]),
        workload=workload,
        completion_times=times,
        stats=stats,
        confidence_level=request.confidence_level,
    )
    # Dispatch overhead: what the execute phase cost beyond the compute
    # itself, assuming the compute was spread evenly over the slots that
    # completed work.  An estimate, not an accounting identity.
    active_slots = max(1, len(slot_completed))
    dispatch_overhead = max(
        0.0, execute_seconds - compute_seconds[0] / active_slots
    )
    attribution = _attribution_ledger(
        plan_seconds=plan_seconds,
        execute_seconds=execute_seconds,
        merge_seconds=merge_seconds,
        compute_sum=compute_seconds[0],
        shard_attribution=shard_attribution,
        peak_in_flight=peak_in_flight,
    )
    timings = {
        "plan_seconds": plan_seconds,
        "execute_seconds": execute_seconds,
        "merge_seconds": merge_seconds,
        "block_compute_seconds": compute_seconds[0],
        "dispatch_overhead_seconds": dispatch_overhead if missing else 0.0,
    }
    timings.update(attribution)
    report = EngineReport(
        estimate=estimate,
        stats=stats,
        blocks_total=len(blocks),
        blocks_cached=len(blocks) - len(missing),
        shards_dispatched=shards_dispatched,
        wall_seconds=perf_counter() - started,
        slot_completed=slot_completed,
        timings=timings,
        attribution=attribution,
        shard_attribution=shard_attribution,
        sizing=sizing,
    )
    _record_run_history(
        report,
        request=request,
        identity=identity,
        executor_label=executor_label,
        num_realisations=num_realisations,
    )
    return report


def _record_run_history(
    report: "EngineReport",
    *,
    request: EngineRequest,
    identity: Optional[ScenarioSpec],
    executor_label: Optional[str],
    num_realisations: int,
) -> None:
    """Append this run to the run-history ledger (best-effort).

    The executor label folds into the sentinel's baseline-matching key,
    so it must be stable across runs: an explicit name wins, then the
    type of whatever actually dispatched shards, then ``"cached"`` for
    runs served entirely from the block cache (their wall time measures
    cache reads, not compute — a separate cohort by construction).
    """
    try:
        from repro.obs import history

        if isinstance(request.executor, str):
            label = request.executor
        elif executor_label is not None:
            label = executor_label
        elif isinstance(request.executor, ShardExecutor):
            label = type(request.executor).__name__
        else:
            label = "cached"
        if identity is not None:
            scenario = identity.name or "adhoc"
            spec_hash: Optional[str] = identity.content_hash
            backend = identity.backend
        else:
            scenario = "adhoc"
            spec_hash = None
            backend = str(request.backend or "reference")
        history.record_engine_run(
            report,
            scenario=scenario,
            spec_hash=spec_hash,
            backend=backend,
            executor=label,
            realisations=num_realisations,
            workers=request.workers,
        )
    except Exception:  # telemetry must never take the run down
        logger.debug("run-history recording failed", exc_info=True)


def _execute_adaptive(
    *,
    scheduler: ShardScheduler,
    executor: ShardExecutor,
    missing: Sequence[SeedBlock],
    make_items: Callable[[Sequence[Any]], Dict[int, Dict[str, Any]]],
    merged_blocks: Dict[int, Dict[str, Any]],
    cached_costs: Sequence[float],
    amortization: float,
) -> tuple:
    """Size shards from measured costs; returns ``(dispatched, sizing)``.

    Calibration sources, in order of preference:

    1. per-block ``wall_seconds`` already in the shard store (a resumed or
       grown run re-sizes its remaining blocks for free);
    2. a *probe wave* — one single-block shard per slot, dispatched through
       the same scheduler, whose results yield both the block compute cost
       and the dispatch round-trip overhead (attribution round-trip minus
       block compute);
    3. the executor's static ``round_trip_hint`` when the probe cannot
       measure overhead (e.g. all probes raced onto one slot).

    The remaining blocks are then cut into
    :func:`~repro.distributed.plan.adaptive_shard_count` shards.  Sizing
    only regroups blocks — block seed streams and merged statistics are
    untouched by construction.
    """
    depth = max(1, int(getattr(executor, "slot_depth", 1)))
    slots = max(1, len(executor.slots()) * depth)
    block_cost = median(cached_costs) if cached_costs else None
    round_trip: Optional[float] = None
    probe_shards: Sequence[Any] = ()
    rest = tuple(missing)
    if block_cost is None and len(missing) > slots:
        probe_shards = plan_shards(rest[:slots], slots)
        scheduler.run(make_items(probe_shards))
        rest = rest[len(probe_shards) :]
        probe_costs = []
        overheads = []
        for shard in probe_shards:
            compute = 0.0
            for block in shard.blocks:
                payload = merged_blocks.get(block.index)
                wall = payload.get("wall_seconds") if payload else None
                if wall:
                    probe_costs.append(float(wall))
                    compute += float(wall)
            record = scheduler.shard_attribution.get(shard.index)
            if record and record.get("round_trip_seconds") is not None:
                overheads.append(
                    max(0.0, float(record["round_trip_seconds"]) - compute)
                )
        if probe_costs:
            block_cost = median(probe_costs)
        if overheads:
            round_trip = median(overheads)
    if round_trip is None:
        hint = float(getattr(executor, "round_trip_hint", 0.0) or 0.0)
        round_trip = hint if hint > 0 else None
    main: Sequence[Any] = ()
    if rest:
        count = adaptive_shard_count(
            len(rest),
            slots,
            block_seconds=block_cost,
            round_trip_seconds=round_trip,
            amortization=amortization,
        )
        main = plan_shards(rest, count, start_index=len(probe_shards))
        scheduler.run(make_items(main))
    sizing: Dict[str, float] = {
        "slots": float(slots),
        "probe_shards": float(len(probe_shards)),
        "main_shards": float(len(main)),
    }
    if block_cost is not None:
        sizing["block_seconds"] = float(block_cost)
    if round_trip is not None:
        sizing["round_trip_seconds"] = float(round_trip)
    return len(probe_shards) + len(main), sizing


def _attribution_ledger(
    *,
    plan_seconds: float,
    execute_seconds: float,
    merge_seconds: float,
    compute_sum: float,
    shard_attribution: Dict[int, Dict[str, float]],
    peak_in_flight: int,
) -> Dict[str, float]:
    """Fold per-shard attribution records into a wall-equivalent ledger.

    Per-shard seconds are *summed over shards* and the summed round-trip
    components are divided by the peak number of concurrently in-flight
    shards — the honest "how much wall clock did this category cost"
    conversion.  ``idle_seconds`` is whatever part of the execute phase no
    round trip covered (slots waiting on the last stragglers, scheduler
    poll latency), so the identity

        plan + wire + deserialize + compute + dispatch + idle + merge
            ≈ wall seconds

    holds by construction; ``queue_wait_seconds`` overlaps slot-busy time
    and stays outside the sum (see :class:`EngineReport`).
    """
    slots = max(1, peak_in_flight)
    records = list(shard_attribution.values())
    round_trip = sum(r.get("round_trip_seconds", 0.0) for r in records)
    queue_wait = sum(r.get("queue_wait_seconds", 0.0) for r in records)
    wire = sum(r.get("wire_seconds", 0.0) for r in records)
    deserialize = sum(r.get("deserialize_seconds", 0.0) for r in records)
    # Backend compute is taken from the blocks' own wall_seconds (present
    # with or without tracing); everything else a round trip spent —
    # framework code, pickling, stats reduction — lands in dispatch.
    dispatch = max(0.0, round_trip - wire - deserialize - compute_sum)
    idle = max(0.0, execute_seconds - round_trip / slots)
    return {
        "plan_seconds": plan_seconds,
        "wire_seconds": wire / slots,
        "deserialize_seconds": deserialize / slots,
        "compute_seconds": compute_sum / slots if records else 0.0,
        "dispatch_seconds": dispatch / slots,
        "idle_seconds": idle if records else max(0.0, execute_seconds),
        "merge_seconds": merge_seconds,
        "queue_wait_seconds": queue_wait / slots,
    }


# ---------------------------------------------------------------------------
# Legacy-shim support
# ---------------------------------------------------------------------------

#: Legacy entry points that already warned this process (warn exactly once).
_LEGACY_WARNED: set = set()


def warn_legacy(name: str) -> None:
    """Emit the deprecation warning for a legacy ``run_monte_carlo_*`` shim.

    Each shim warns exactly once per process — loops over the old API stay
    usable without drowning the console.
    """
    if name in _LEGACY_WARNED:
        return
    _LEGACY_WARNED.add(name)
    warnings.warn(
        f"{name}() is a deprecated shim over the unified Monte-Carlo "
        "engine; build an EngineRequest and call "
        "repro.montecarlo.engine.run_engine() instead",
        DeprecationWarning,
        stacklevel=3,
    )
