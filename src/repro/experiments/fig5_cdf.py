"""Fig. 5 — CDF of the overall completion time under LBP-1.

The paper evaluates eq. (5) for two initial workloads, (50, 0) and (25, 50),
with and without node failure, using the gain that minimises the mean
completion time and a per-task delay of 0.02 s.  This driver computes the
same four CDFs from the absorbing-CTMC formulation (and can cross-check them
against Monte-Carlo empirical CDFs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.tables import Table
from repro.core.distribution import CompletionTimeCDF, completion_time_cdf_lbp1
from repro.core.optimize import optimal_gain_lbp1
from repro.core.parameters import SystemParameters
from repro.core.policies.lbp1 import LBP1
from repro.experiments import common
from repro.montecarlo.engine import EngineRequest, run_engine
from repro.montecarlo.statistics import evaluate_empirical_cdf


@dataclass
class Fig5Panel:
    """One panel of Fig. 5: CDFs for a single initial workload."""

    workload: Tuple[int, int]
    gain: float
    times: np.ndarray
    cdf_failure: CompletionTimeCDF
    cdf_no_failure: CompletionTimeCDF
    empirical_failure: Optional[np.ndarray] = None

    def as_table(self) -> Table:
        """The panel's series as a table with one row per grid time."""
        columns = ["time", "cdf_failure", "cdf_no_failure"]
        if self.empirical_failure is not None:
            columns.append("empirical_failure")
        table = Table(
            columns,
            title=f"Fig. 5 — completion-time CDF, workload {self.workload}, K={self.gain:.2f}",
        )
        for i, t in enumerate(self.times):
            row = {
                "time": float(t),
                "cdf_failure": float(self.cdf_failure.probabilities[i]),
                "cdf_no_failure": float(self.cdf_no_failure.probabilities[i]),
            }
            if self.empirical_failure is not None:
                row["empirical_failure"] = float(self.empirical_failure[i])
            table.add_row(row)
        return table


@dataclass
class Fig5Result:
    """Both panels of Fig. 5."""

    panels: Dict[Tuple[int, int], Fig5Panel]

    def render(self) -> str:
        """Plain-text rendering of both panels plus headline quantiles."""
        lines = []
        for workload, panel in self.panels.items():
            lines.append(format_table(panel.as_table(), float_format="{:.3f}"))
            lines.append(
                f"  median (failure):    {panel.cdf_failure.quantile(0.5):.1f} s"
            )
            lines.append(
                f"  median (no failure): {panel.cdf_no_failure.quantile(0.5):.1f} s"
            )
            lines.append("")
        return "\n".join(lines)


def run(
    params: Optional[SystemParameters] = None,
    workloads: Sequence[Tuple[int, int]] = common.CDF_WORKLOADS,
    times: Optional[Sequence[float]] = None,
    method: str = "uniformization",
    with_monte_carlo: bool = False,
    mc_realisations: int = 300,
    seed: int = 505,
) -> Fig5Result:
    """Regenerate both panels of Fig. 5."""
    params = params if params is not None else common.default_parameters()
    grid = np.asarray(times if times is not None else np.linspace(0.0, 250.0, 126))
    no_failure = params.without_failures()

    panels: Dict[Tuple[int, int], Fig5Panel] = {}
    for workload in workloads:
        workload_t = (int(workload[0]), int(workload[1]))
        optimum = optimal_gain_lbp1(params, workload_t)
        gain = optimum.optimal_gain

        cdf_failure = completion_time_cdf_lbp1(
            params,
            workload_t,
            gain,
            grid,
            sender=optimum.sender,
            receiver=optimum.receiver,
            method=method,
        )
        cdf_no_failure = completion_time_cdf_lbp1(
            no_failure,
            workload_t,
            gain,
            grid,
            sender=optimum.sender,
            receiver=optimum.receiver,
            method=method,
        )

        empirical = None
        if with_monte_carlo:
            policy = LBP1(gain, sender=optimum.sender, receiver=optimum.receiver)
            estimate = run_engine(
                EngineRequest(
                    params=params,
                    policy=policy,
                    workload=workload_t,
                    num_realisations=mc_realisations,
                    seed=seed,
                )
            ).estimate
            empirical = evaluate_empirical_cdf(estimate.completion_times, grid)

        panels[workload_t] = Fig5Panel(
            workload=workload_t,
            gain=gain,
            times=grid,
            cdf_failure=cdf_failure,
            cdf_no_failure=cdf_no_failure,
            empirical_failure=empirical,
        )
    return Fig5Result(panels=panels)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run().render())
