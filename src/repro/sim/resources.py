"""Small resource library for the DES kernel.

Only two primitives are needed by the test-bed emulation:

* :class:`Resource` — a counting resource with FIFO queueing (used to model
  a node's single CPU and the single wireless channel the two hosts share).
* :class:`Store` — an unbounded FIFO store of Python objects (used as the
  message queue between the emulated communication and application layers).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List, Optional

from repro.sim.events import Event
from repro.sim.exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class _Request(Event):
    """Pending request for one unit of a :class:`Resource`."""

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._on_request(self)

    def release(self) -> None:
        """Release the unit held (or cancel the request if still queued)."""
        self.resource._on_release(self)

    # Support ``with resource.request() as req: yield req``.
    def __enter__(self) -> "_Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.release()


class Resource:
    """A counting resource with ``capacity`` units and FIFO discipline."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.env = env
        self.capacity = int(capacity)
        self._users: List[_Request] = []
        self._waiting: Deque[_Request] = deque()

    @property
    def count(self) -> int:
        """Number of units currently in use."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a unit."""
        return len(self._waiting)

    def request(self) -> _Request:
        """Request one unit; the returned event triggers when granted."""
        return _Request(self)

    # -- internal ----------------------------------------------------------

    def _on_request(self, request: _Request) -> None:
        if len(self._users) < self.capacity:
            self._users.append(request)
            request.succeed(self)
        else:
            self._waiting.append(request)

    def _on_release(self, request: _Request) -> None:
        if request in self._users:
            self._users.remove(request)
            self._grant_next()
        else:
            try:
                self._waiting.remove(request)
            except ValueError:
                raise SimulationError(
                    "release() called on a request unknown to this resource"
                ) from None

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.append(nxt)
            nxt.succeed(self)


class _Get(Event):
    """Pending retrieval from a :class:`Store`."""

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        store._on_get(self)


class Store:
    """An unbounded FIFO store of arbitrary items."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[_Get] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of the items currently stored."""
        return tuple(self._items)

    def put(self, item: Any) -> None:
        """Add ``item`` to the store, waking one waiting getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> _Get:
        """Event that triggers with the next available item (FIFO)."""
        return _Get(self)

    # -- internal ----------------------------------------------------------

    def _on_get(self, getter: _Get) -> None:
        if self._items:
            getter.succeed(self._items.popleft())
        else:
            self._getters.append(getter)
