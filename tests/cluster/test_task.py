"""Tests for the task life-cycle."""

import pytest

from repro.cluster.task import Task, TaskState


class TestTaskConstruction:
    def test_defaults(self):
        task = Task(task_id=0, origin=1)
        assert task.state is TaskState.QUEUED
        assert task.owner == 1
        assert task.size == 1.0
        assert task.transfers == 0
        assert not task.is_completed

    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            Task(task_id=-1, origin=0)

    def test_rejects_negative_origin(self):
        with pytest.raises(ValueError):
            Task(task_id=0, origin=-1)

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            Task(task_id=0, origin=0, size=0.0)


class TestTaskLifecycle:
    def test_normal_execution_path(self):
        task = Task(task_id=1, origin=0)
        task.mark_in_service()
        assert task.state is TaskState.IN_SERVICE
        task.mark_completed(3.5, node_index=0)
        assert task.is_completed
        assert task.completed_at == 3.5
        assert task.owner == 0

    def test_transfer_path(self):
        task = Task(task_id=1, origin=0)
        task.mark_in_transit()
        assert task.state is TaskState.IN_TRANSIT
        assert task.owner is None
        assert task.transfers == 1
        task.mark_delivered(1)
        assert task.state is TaskState.QUEUED
        assert task.owner == 1

    def test_preemption_records_residual_work(self):
        task = Task(task_id=1, origin=0)
        task.mark_in_service()
        task.mark_preempted(0.75)
        assert task.state is TaskState.QUEUED
        assert task.remaining_service == 0.75

    def test_preemption_with_restart_semantics(self):
        task = Task(task_id=1, origin=0)
        task.mark_in_service()
        task.mark_preempted(None)
        assert task.remaining_service is None

    def test_completion_clears_residual_work(self):
        task = Task(task_id=1, origin=0)
        task.mark_in_service()
        task.mark_preempted(0.5)
        task.mark_in_service()
        task.mark_completed(2.0, node_index=0)
        assert task.remaining_service is None

    def test_cannot_complete_from_queue(self):
        task = Task(task_id=1, origin=0)
        with pytest.raises(ValueError):
            task.mark_completed(1.0, node_index=0)

    def test_cannot_start_service_twice(self):
        task = Task(task_id=1, origin=0)
        task.mark_in_service()
        with pytest.raises(ValueError):
            task.mark_in_service()

    def test_cannot_preempt_queued_task(self):
        task = Task(task_id=1, origin=0)
        with pytest.raises(ValueError):
            task.mark_preempted(1.0)

    def test_cannot_transfer_completed_task(self):
        task = Task(task_id=1, origin=0)
        task.mark_in_service()
        task.mark_completed(1.0, node_index=0)
        with pytest.raises(ValueError):
            task.mark_in_transit()

    def test_cannot_deliver_task_not_in_transit(self):
        task = Task(task_id=1, origin=0)
        with pytest.raises(ValueError):
            task.mark_delivered(1)

    def test_multiple_transfers_counted(self):
        task = Task(task_id=1, origin=0)
        for destination in (1, 0, 1):
            task.mark_in_transit()
            task.mark_delivered(destination)
        assert task.transfers == 3
