"""Benchmark: regenerate Fig. 5 (completion-time CDFs, failure vs no failure)."""

import numpy as np
import pytest

from repro.experiments.fig5_cdf import run as run_fig5


@pytest.mark.benchmark(group="fig5")
def test_fig5_completion_time_cdfs(benchmark, bench_once):
    result = bench_once(
        benchmark,
        run_fig5,
        with_monte_carlo=True,
        mc_realisations=200,
        seed=505,
    )
    print()
    print(result.render())

    # Shape checks: monotone CDFs, the failure curve is shifted right
    # (stochastically dominated), and the Monte-Carlo empirical CDF tracks
    # the analytical one.
    for workload, panel in result.panels.items():
        probabilities = panel.cdf_failure.probabilities
        assert np.all(np.diff(probabilities) >= -1e-12)
        assert np.all(
            panel.cdf_no_failure.probabilities >= probabilities - 1e-9
        )
        if panel.empirical_failure is not None:
            gap = np.max(np.abs(panel.empirical_failure - probabilities))
            assert gap < 0.15
        # the median completion time is longer under failures
        assert panel.cdf_failure.quantile(0.5) >= panel.cdf_no_failure.quantile(0.5)
