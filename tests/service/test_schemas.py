"""Submission planning and catalog payload schemas (no server involved)."""

from __future__ import annotations

import pytest

from repro.scenarios import resolve
from repro.scenarios.catalog import catalog_payload, supported_backends
from repro.service.jobs import plan_submission


class TestPlanSubmission:
    def test_single_scenario(self):
        specs, request = plan_submission({"scenario": "smoke"})
        assert [s.name for s in specs] == ["smoke"]
        assert request == {
            "scenario": "smoke",
            "quick": False,
            "force": False,
            "seed": None,
            "backend": None,
            "shards": None,
            "executor": None,
        }

    def test_quick_resolves_quick_variant(self):
        (full,), _ = plan_submission({"scenario": "fig3"})
        (quick,), _ = plan_submission({"scenario": "fig3", "quick": True})
        assert quick == resolve("fig3", quick=True)
        assert quick.mc_realisations < full.mc_realisations

    def test_family_expands_every_point(self):
        specs, _ = plan_submission({"family": "delay-sweep"})
        assert len(specs) == 7
        assert all(s.name.startswith("delay-sweep/") for s in specs)

    def test_scenario_list(self):
        specs, _ = plan_submission({"scenarios": ["smoke", "churn/fast"]})
        assert [s.name for s in specs] == ["smoke", "churn/fast"]

    def test_inline_spec_round_trips(self):
        spec = resolve("smoke").with_(seed=99)
        (planned,), _ = plan_submission({"spec": spec.to_dict()})
        assert planned == spec
        assert planned.content_hash == spec.content_hash

    def test_seed_and_backend_overrides_change_hash(self):
        (base,), _ = plan_submission({"scenario": "smoke"})
        (reseeded,), _ = plan_submission({"scenario": "smoke", "seed": 7})
        (vectorized,), _ = plan_submission(
            {"scenario": "smoke", "backend": "vectorized"}
        )
        assert reseeded.seed == 7
        assert vectorized.backend == "vectorized"
        assert len({base.content_hash, reseeded.content_hash,
                    vectorized.content_hash}) == 3

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ("not a dict", "JSON object"),
            ({}, "exactly one of"),
            ({"scenario": "smoke", "family": "churn"}, "exactly one of"),
            ({"scenario": "nope"}, "unknown scenario"),
            ({"family": "nope"}, "unknown scenario family"),
            ({"scenarios": []}, "non-empty list"),
            ({"scenario": "smoke", "seed": "seven"}, "seed must be"),
            ({"scenario": "smoke", "backend": 3}, "backend must be"),
            ({"scenario": "smoke", "backend": "fpga"}, "unknown execution backend"),
            ({"scenario": "fig4", "backend": "vectorized"}, "cannot honour"),
            ({"scenario": "smoke", "bogus": 1}, "unknown submission fields"),
            ({"spec": "nope"}, "scenario-spec object"),
            ({"spec": {"name": "x"}}, "invalid inline spec"),
        ],
    )
    def test_invalid_payloads_rejected(self, payload, fragment):
        with pytest.raises(ValueError, match=fragment):
            plan_submission(payload)

    def test_planning_is_numpy_free(self):
        import os
        import pathlib
        import subprocess
        import sys

        code = (
            "import sys\n"
            "from repro.service.jobs import plan_submission\n"
            "plan_submission({'family': 'delay-sweep', 'seed': 3,"
            " 'backend': 'vectorized'})\n"
            "assert 'numpy' not in sys.modules, 'numpy on the planning path'\n"
            "assert 'scipy' not in sys.modules, 'scipy on the planning path'\n"
        )
        repo = pathlib.Path(__file__).resolve().parents[2]
        env = dict(os.environ, PYTHONPATH=str(repo / "src"))
        subprocess.run([sys.executable, "-c", code], check=True, env=env)


class TestCatalogPayload:
    def test_shape_and_coverage(self):
        payload = catalog_payload()
        assert payload["spec_version"] == 4
        names = {s["name"] for s in payload["scenarios"]}
        assert {"fig1", "fig3", "table3", "smoke", "mc-scaling"} <= names
        families = {f["name"] for f in payload["families"]}
        assert families == {
            "delay-sweep", "failure-sweep", "multinode", "churn", "gain-sweep",
        }
        for scenario in payload["scenarios"]:
            assert set(scenario) >= {
                "name", "kind", "backends", "seed", "workload",
                "mc_realisations", "content_hash", "quick_content_hash",
                "description", "tags",
            }
            assert len(scenario["content_hash"]) == 64

    def test_backend_support_follows_kind_gating(self):
        payload = catalog_payload()
        by_name = {s["name"]: s for s in payload["scenarios"]}
        assert by_name["smoke"]["backends"] == ["auto", "reference", "vectorized"]
        assert by_name["fig3"]["backends"] == ["reference"]
        assert supported_backends("delay_point") == ("auto", "reference", "vectorized")
        assert supported_backends("fig1") == ("reference",)

    def test_family_points_carry_quick_hashes(self):
        payload = catalog_payload()
        delay = next(f for f in payload["families"] if f["name"] == "delay-sweep")
        for point in delay["points"]:
            assert point["quick_content_hash"]
            assert point["quick_content_hash"] != point["content_hash"]

    def test_payload_is_deterministic(self):
        import json

        first = json.dumps(catalog_payload(), sort_keys=True)
        second = json.dumps(catalog_payload(), sort_keys=True)
        assert first == second
