"""Work-state bookkeeping for the regeneration analysis.

The paper describes the joint up/down configuration of the nodes as the
*work state* of the system: a 2-node system has the four work states
``(k1, k2) ∈ {0, 1}²`` where "1" means working and "0" means dead/recovering.
This module provides small helpers to enumerate work states, compute the
failure/recovery transition rates between them and determine which work
states are reachable from a given initial configuration (needed so the
no-failure special case does not drag unreachable states into the linear
systems).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.parameters import SystemParameters

WorkState = Tuple[int, ...]


def all_work_states(num_nodes: int) -> Tuple[WorkState, ...]:
    """All ``2**num_nodes`` work states in lexicographic order."""
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes!r}")
    return tuple(product((0, 1), repeat=num_nodes))


def validate_work_state(state: Sequence[int], num_nodes: int) -> WorkState:
    """Check that ``state`` is a valid work state and return it as a tuple."""
    state_t = tuple(int(k) for k in state)
    if len(state_t) != num_nodes:
        raise ValueError(
            f"work state {state_t} has {len(state_t)} entries, expected {num_nodes}"
        )
    if any(k not in (0, 1) for k in state_t):
        raise ValueError(f"work-state entries must be 0 or 1, got {state_t}")
    return state_t


def initial_work_state(params: SystemParameters) -> WorkState:
    """Work state implied by the ``initially_up`` flags of the nodes."""
    return tuple(1 if node.initially_up else 0 for node in params.nodes)


def transition_rate(
    from_state: WorkState, to_state: WorkState, params: SystemParameters
) -> float:
    """Failure/recovery rate between two work states (0 if not adjacent).

    Work-state transitions flip exactly one node: up→down at that node's
    failure rate, down→up at its recovery rate.
    """
    diffs = [i for i, (a, b) in enumerate(zip(from_state, to_state)) if a != b]
    if len(diffs) != 1:
        return 0.0
    node = diffs[0]
    if from_state[node] == 1:  # failure
        return params.node(node).failure_rate
    return params.node(node).recovery_rate  # recovery


def work_state_rate_matrix(
    states: Sequence[WorkState], params: SystemParameters
) -> np.ndarray:
    """Matrix ``F[s, s']`` of failure/recovery rates between the given states."""
    n = len(states)
    matrix = np.zeros((n, n))
    for i, src in enumerate(states):
        for j, dst in enumerate(states):
            if i != j:
                matrix[i, j] = transition_rate(src, dst, params)
    return matrix


def reachable_work_states(
    initial: Sequence[int], params: SystemParameters
) -> Tuple[WorkState, ...]:
    """Work states reachable from ``initial`` under the failure/recovery rates.

    With all failure and recovery rates positive this is the full set of
    ``2**n`` states; with failures switched off only the initial state (or
    the states obtainable by pending recoveries) is reachable, which keeps
    the no-failure model's linear systems non-singular.
    """
    start = validate_work_state(initial, params.num_nodes)
    frontier: List[WorkState] = [start]
    seen = {start}
    while frontier:
        current = frontier.pop()
        for node in range(params.num_nodes):
            if current[node] == 1:
                rate = params.node(node).failure_rate
            else:
                rate = params.node(node).recovery_rate
            if rate <= 0:
                continue
            nxt = list(current)
            nxt[node] = 1 - nxt[node]
            nxt_t = tuple(nxt)
            if nxt_t not in seen:
                seen.add(nxt_t)
                frontier.append(nxt_t)
    # Deterministic ordering: lexicographic.
    return tuple(sorted(seen))


def state_index_map(states: Iterable[WorkState]) -> Dict[WorkState, int]:
    """Map each work state to its row index."""
    return {state: i for i, state in enumerate(states)}
