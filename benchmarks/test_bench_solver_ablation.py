"""Ablation: the three expected-completion-time solvers (eq. (4)).

Compares the reference recursion, the vectorised anti-diagonal sweep and the
sparse absorbing-CTMC formulation on the same configuration: all three must
return the same value; the benchmark groups expose their relative cost.
"""

import pytest

from repro.core.completion_time import CompletionTimeSolver
from repro.core.parameters import paper_parameters

WORKLOAD = (100, 60)
GAIN = 0.35


@pytest.fixture(scope="module")
def expected_value():
    solver = CompletionTimeSolver(paper_parameters(), method="vectorized")
    return solver.lbp1(WORKLOAD, GAIN, sender=0, receiver=1).mean


def _solve(method):
    solver = CompletionTimeSolver(paper_parameters(), method=method)
    return solver.lbp1(WORKLOAD, GAIN, sender=0, receiver=1).mean


@pytest.mark.benchmark(group="solver-ablation")
def test_solver_vectorized(benchmark, expected_value):
    value = benchmark(_solve, "vectorized")
    assert value == pytest.approx(expected_value, rel=1e-10)


@pytest.mark.benchmark(group="solver-ablation")
def test_solver_reference(benchmark, expected_value, bench_once):
    value = bench_once(benchmark, _solve, "reference")
    assert value == pytest.approx(expected_value, rel=1e-10)


@pytest.mark.benchmark(group="solver-ablation")
def test_solver_ctmc(benchmark, expected_value, bench_once):
    value = bench_once(benchmark, _solve, "ctmc")
    assert value == pytest.approx(expected_value, rel=1e-8)


@pytest.mark.benchmark(group="solver-ablation")
def test_gain_sweep_with_cached_hat_table(benchmark):
    """A full 21-point gain sweep re-using the cached no-transit table —
    the configuration every optimisation call in the experiments hits."""
    import numpy as np

    def sweep():
        solver = CompletionTimeSolver(paper_parameters())
        return solver.gain_sweep(WORKLOAD, np.linspace(0, 1, 21), sender=0, receiver=1)

    means = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert means.min() == pytest.approx(116.75, rel=0.01)
