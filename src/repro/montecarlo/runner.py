"""Running repeated independent realisations of a simulated system."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.cluster.system import DistributedSystem, SimulationResult
from repro.cluster.workload import Workload
from repro.core.parameters import SystemParameters
from repro.core.policies.base import LoadBalancingPolicy
from repro.montecarlo.statistics import SummaryStatistics, summarize
from repro.sim.rng import RandomStreams, SeedLike


@dataclass
class MonteCarloEstimate:
    """Aggregate of ``n`` independent realisations."""

    policy_name: str
    workload: tuple
    completion_times: np.ndarray
    summary: SummaryStatistics
    results: List[SimulationResult] = field(default_factory=list)

    @property
    def mean_completion_time(self) -> float:
        """Sample mean of the overall completion time."""
        return self.summary.mean

    @property
    def num_realisations(self) -> int:
        """Number of realisations aggregated."""
        return self.summary.n

    def percentile(self, q: float) -> float:
        """Percentile of the completion-time sample (``q`` in [0, 100])."""
        return float(np.percentile(self.completion_times, q))


class MonteCarloRunner:
    """Runs independent realisations with carefully separated random streams.

    Parameters
    ----------
    params:
        System parameters.
    policy:
        The load-balancing policy under study.
    workload:
        Initial workload vector.
    seed:
        Root seed; realisation ``k`` uses the ``k``-th spawned child stream,
        so results are reproducible and independent of execution order.
    keep_results:
        Whether to retain every :class:`SimulationResult` (needed for traces
        and per-node statistics; switch off for very large runs).
    system_kwargs:
        Extra keyword arguments forwarded to :class:`DistributedSystem`
        (e.g. ``preemption="restart"`` or ``record_trace=True``).
    """

    def __init__(
        self,
        params: SystemParameters,
        policy: LoadBalancingPolicy,
        workload: Union[Workload, Sequence[int]],
        seed: SeedLike = None,
        keep_results: bool = False,
        **system_kwargs,
    ) -> None:
        self.params = params
        self.policy = policy
        self.workload = workload if isinstance(workload, Workload) else Workload(tuple(workload))
        self.root = RandomStreams(seed)
        self.keep_results = keep_results
        self.system_kwargs = system_kwargs

    def run_one(self, streams: RandomStreams, horizon: Optional[float] = None) -> SimulationResult:
        """Run a single realisation with the given stream collection."""
        system = DistributedSystem(
            self.params,
            self.policy,
            self.workload,
            streams=streams,
            **self.system_kwargs,
        )
        return system.run(horizon=horizon)

    def run(
        self,
        num_realisations: int,
        horizon: Optional[float] = None,
        confidence_level: float = 0.95,
        progress: Optional[Callable[[int, SimulationResult], None]] = None,
    ) -> MonteCarloEstimate:
        """Run ``num_realisations`` independent realisations and aggregate them."""
        if num_realisations < 1:
            raise ValueError(f"num_realisations must be >= 1, got {num_realisations!r}")
        children = self.root.spawn(num_realisations)
        completion_times = np.empty(num_realisations)
        kept: List[SimulationResult] = []
        for k, streams in enumerate(children):
            result = self.run_one(streams, horizon=horizon)
            completion_times[k] = result.completion_time
            if self.keep_results:
                kept.append(result)
            if progress is not None:
                progress(k, result)
        return MonteCarloEstimate(
            policy_name=self.policy.name,
            workload=tuple(self.workload),
            completion_times=completion_times,
            summary=summarize(completion_times, confidence_level=confidence_level),
            results=kept,
        )


def run_monte_carlo(
    params: SystemParameters,
    policy: LoadBalancingPolicy,
    workload: Union[Workload, Sequence[int]],
    num_realisations: int,
    seed: SeedLike = None,
    horizon: Optional[float] = None,
    **system_kwargs,
) -> MonteCarloEstimate:
    """One-call Monte-Carlo estimate of the mean overall completion time."""
    runner = MonteCarloRunner(params, policy, workload, seed=seed, **system_kwargs)
    return runner.run(num_realisations, horizon=horizon)
