"""Cross-process trace propagation: context, capture, offset, stitching."""

import pytest

from repro.obs.propagate import (
    TRACE_CTX_VERSION,
    child_capture,
    clock_offset,
    export_subtree,
    make_context,
    stitch_subtree,
    subtree_totals,
)
from repro.obs.trace import Tracer


class TestMakeContext:
    def test_none_without_active_tracer(self):
        assert make_context() is None

    def test_snapshots_the_active_tracer(self):
        tracer = Tracer()
        with tracer.activate():
            with tracer.span("outer") as outer:
                ctx = make_context(shard=3)
        assert ctx["v"] == TRACE_CTX_VERSION
        assert ctx["trace"] == tracer.trace_id
        assert ctx["parent"] == outer.span_id
        assert ctx["sent_at"] >= 0.0
        assert ctx["shard"] == 3


class TestChildCapture:
    def test_missing_context_yields_none(self):
        with child_capture(None) as child:
            assert child is None

    def test_foreign_version_yields_none(self):
        with child_capture({"v": 99, "trace": "abc"}) as child:
            assert child is None

    def test_child_inherits_trace_id_and_collects_spans(self):
        ctx = {"v": TRACE_CTX_VERSION, "trace": "feedc0de", "parent": 1,
               "sent_at": 0.5}
        with child_capture(ctx) as child:
            assert child is not None
            assert child.trace_id == "feedc0de"
            with child.span("worker.compute"):
                pass
        assert [s.name for s in child.spans] == ["worker.compute"]


class TestClockOffset:
    def test_symmetric_estimate(self):
        # Parent sends at 10, acks at 14; child busy 1000..1003 on its own
        # clock.  Symmetric wire delay -> child interval centred in the
        # round trip: offset = ((10-1000)+(14-1003))/2 = -989.5.
        assert clock_offset(10.0, 14.0, 1000.0, 1003.0) == pytest.approx(-989.5)

    def test_clamped_into_round_trip(self):
        # A skewed child clock cannot push the mapped interval outside
        # [t_send, t_recv].
        offset = clock_offset(10.0, 14.0, 1000.0, 1001.0)
        assert 1000.0 + offset >= 10.0
        assert 1001.0 + offset <= 14.0

    def test_busy_longer_than_round_trip_pins_start(self):
        # Broken clock: child claims 10s of work inside a 2s round trip.
        offset = clock_offset(10.0, 12.0, 1000.0, 1010.0)
        assert 1000.0 + offset == pytest.approx(10.0)


class TestStitchSubtree:
    def _subtree(self, spans, c_recv=0.0, c_done=1.0, pid=4242):
        return {
            "v": TRACE_CTX_VERSION,
            "trace": "feedc0de",
            "spans": spans,
            "clock": {"recv": c_recv, "done": c_done},
            "process": {"pid": pid, "host": "elsewhere", "worker": "w-a"},
        }

    def test_skewed_child_clock_lands_inside_parent_interval(self):
        # The child process' monotonic epoch is wildly different (its
        # timeline starts near 5000s); stitching must still place every
        # span inside the parent's observed [t_send, t_recv] window.
        tracer = Tracer()
        with tracer.activate():
            shard_span = tracer.record(
                "scheduler.shard", 4.0, start=10.0, shard=0
            )
            subtree = self._subtree(
                [
                    {"v": 1, "span": 1, "parent": None, "name": "worker.item",
                     "start": 5000.0, "duration": 3.0, "attrs": {}},
                    {"v": 1, "span": 2, "parent": 1, "name": "worker.compute",
                     "start": 5000.5, "duration": 2.0, "attrs": {}},
                ],
                c_recv=5000.0,
                c_done=5003.0,
            )
            grafted = stitch_subtree(
                tracer, subtree, parent_id=shard_span.span_id,
                t_send=10.0, t_recv=14.0,
            )
        assert [s.name for s in grafted] == ["worker.item", "worker.compute"]
        item, compute = grafted
        for span in grafted:
            assert 10.0 <= span.start <= 14.0
            assert span.start + span.duration <= 14.0 + 1e-9
        # Child root hangs off the shard span; internal links are remapped.
        assert item.parent_id == shard_span.span_id
        assert compute.parent_id == item.span_id
        # Interior ordering survives the offset shift.
        assert compute.start > item.start
        # Process identity rides along for cross-process attribution.
        assert item.attrs["pid"] == 4242
        assert item.attrs["worker"] == "w-a"

    def test_fresh_span_ids_on_the_parent_tracer(self):
        tracer = Tracer()
        with tracer.activate():
            parent = tracer.record("scheduler.shard", 1.0, start=0.0)
            grafted = stitch_subtree(
                tracer,
                self._subtree([
                    {"v": 1, "span": 1, "parent": None, "name": "worker.item",
                     "start": 0.0, "duration": 0.5, "attrs": {}},
                ]),
                parent_id=parent.span_id, t_send=0.0, t_recv=1.0,
            )
        ids = [s.span_id for s in tracer.spans]
        assert len(ids) == len(set(ids))
        assert grafted[0].span_id != 1 or parent.span_id != 1

    def test_missing_or_foreign_subtree_is_a_noop(self):
        tracer = Tracer()
        with tracer.activate():
            assert stitch_subtree(
                tracer, None, parent_id=None, t_send=0.0, t_recv=1.0
            ) == []
            assert stitch_subtree(
                tracer, {"v": 99}, parent_id=None, t_send=0.0, t_recv=1.0
            ) == []
        assert tracer.spans == []


class TestExportAndTotals:
    def test_round_trip_through_export(self):
        child = Tracer(trace_id="feedc0de")
        with child.activate():
            with child.span("worker.item"):
                child.record("worker.deserialize", 0.25, start=0.0)
                child.record("worker.compute", 0.5, start=0.25)
        subtree = export_subtree(child, recv_at=0.0, done_at=1.0, worker="w-b")
        assert subtree["trace"] == "feedc0de"
        assert subtree["process"]["worker"] == "w-b"
        assert subtree["process"]["pid"] > 0
        totals = subtree_totals(subtree)
        assert totals["busy"] == pytest.approx(1.0)
        assert totals["deserialize"] == pytest.approx(0.25)
        assert totals["compute"] == pytest.approx(0.5)

    def test_totals_for_missing_subtree_are_zero(self):
        assert subtree_totals(None) == {
            "busy": 0.0, "deserialize": 0.0, "compute": 0.0,
        }
