"""Backend registry: lookup, lazy import, coercion, error handling."""

from __future__ import annotations

import pytest

from repro.backends.base import (
    DEFAULT_BACKEND,
    BackendUnsupportedError,
    ExecutionBackend,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend,
)


class TestRegistry:
    def test_builtin_names_are_listed(self):
        names = backend_names()
        assert "reference" in names
        assert "vectorized" in names
        assert names == tuple(sorted(names))

    def test_builtins_import_lazily(self):
        reference = get_backend("reference")
        vectorized = get_backend("vectorized")
        assert reference.name == "reference"
        assert vectorized.name == "vectorized"
        # The registry holds one shared instance per name.
        assert get_backend("reference") is reference

    def test_unknown_backend_is_a_clean_error(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            get_backend("cuda")

    def test_default_backend_is_reference(self):
        assert DEFAULT_BACKEND == "reference"
        assert resolve_backend(None).name == "reference"

    def test_resolve_coerces_names_and_instances(self):
        by_name = resolve_backend("vectorized")
        assert by_name.name == "vectorized"
        assert resolve_backend(by_name) is by_name
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_register_rejects_nameless_backends(self):
        class Nameless(ExecutionBackend):
            name = ""

            def run_batch(self, *args, **kwargs):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValueError, match="non-empty string name"):
            register_backend(Nameless())

    def test_replacement_reference_backend_is_honoured(self, fast_params, monkeypatch):
        # register_backend documents "(or replace)": both dispatch points
        # must route a replacement named "reference" to its run_batch
        # instead of the built-in event-driven loop.  The engine reduces
        # each block's estimate, so the replacement returns a real estimate
        # and records that it was the one invoked.
        from repro.backends import base
        from repro.backends.reference import ReferenceBackend
        from repro.core.policies.lbp1 import LBP1
        from repro.montecarlo.parallel import run_monte_carlo_auto
        from repro.montecarlo.runner import MonteCarloRunner

        sentinel = object()
        calls = []

        class Replacement(ExecutionBackend):
            name = "reference"

            def run_batch(self, *args, **kwargs):
                calls.append(args)
                return ReferenceBackend().run_batch(*args, **kwargs)

        monkeypatch.setitem(base._REGISTRY, "reference", Replacement())
        estimate = run_monte_carlo_auto(
            fast_params, LBP1(0.35), (10, 6), 3, seed=1, backend="reference"
        )
        assert calls and estimate.num_realisations == 3

        # The per-block primitive still honours the sentinel contract: a
        # non-ReferenceBackend instance dispatches straight to run_batch.
        class Opaque(ExecutionBackend):
            name = "reference"

            def run_batch(self, *args, **kwargs):
                return sentinel

        monkeypatch.setitem(base._REGISTRY, "reference", Opaque())
        runner = MonteCarloRunner(
            fast_params, LBP1(0.35), (10, 6), seed=1, backend="reference"
        )
        assert runner.run(3) is sentinel

    def test_unsupported_error_is_a_value_error(self):
        # Callers catching ValueError (the CLI) see backend-capability
        # failures too.
        assert issubclass(BackendUnsupportedError, ValueError)


class TestSupports:
    def test_reference_supports_everything(self, paper_params):
        from repro.core.policies.lbp1 import LBP1

        backend = get_backend("reference")
        assert backend.supports(paper_params, LBP1(0.35), (10, 6))
        assert backend.supports(
            paper_params, LBP1(0.35), (10, 6), record_trace=True
        )

    def test_vectorized_probe_matches_ensure(self, paper_params):
        from repro.core.policies.lbp1 import LBP1

        backend = get_backend("vectorized")
        assert backend.supports(paper_params, LBP1(0.35), (10, 6))
        assert not backend.supports(
            paper_params, LBP1(0.35), (10, 6), record_trace=True
        )
        with pytest.raises(BackendUnsupportedError):
            backend.ensure_supported(
                paper_params, LBP1(0.35), (10, 6), record_trace=True
            )
