"""Tests for the failure-injection process."""

import numpy as np
import pytest

from repro.core.parameters import NodeParameters
from repro.sim.engine import Environment
from repro.testbed.failure_injector import FailureInjector


class TestFailureInjector:
    def test_reliable_node_never_signals(self, env, rng):
        injector = FailureInjector(
            env, 0, NodeParameters(1.0), rng,
            on_stop=lambda n, t: pytest.fail("should never stop"),
            on_resume=lambda n, t: pytest.fail("should never resume"),
        )
        env.run(until=100.0)
        assert injector.process is None
        assert injector.num_failures == 0

    def test_stop_resume_alternation(self, env, rng):
        events = []
        FailureInjector(
            env, 0,
            NodeParameters(1.0, failure_rate=0.5, recovery_rate=1.0),
            rng,
            on_stop=lambda n, t: events.append(("stop", t)),
            on_resume=lambda n, t: events.append(("resume", t)),
        )
        env.run(until=100.0)
        kinds = [kind for kind, _ in events]
        assert kinds[0] == "stop"
        assert all(a != b for a, b in zip(kinds, kinds[1:])), "must alternate"
        times = [t for _, t in events]
        assert times == sorted(times)

    def test_injected_records_complete_pairs(self, env, rng):
        injector = FailureInjector(
            env, 3,
            NodeParameters(1.0, failure_rate=1.0, recovery_rate=1.0),
            rng,
            on_stop=lambda n, t: None,
            on_resume=lambda n, t: None,
        )
        env.run(until=50.0)
        assert injector.num_failures > 5
        # All but possibly the last record have both a failure and a recovery time.
        for failed_at, recovered_at in injector.injected[:-1]:
            assert recovered_at is not None
            assert recovered_at > failed_at

    def test_node_index_passed_to_signals(self, env, rng):
        seen = []
        FailureInjector(
            env, 7,
            NodeParameters(1.0, failure_rate=2.0, recovery_rate=2.0),
            rng,
            on_stop=lambda n, t: seen.append(n),
            on_resume=lambda n, t: seen.append(n),
        )
        env.run(until=10.0)
        assert set(seen) == {7}

    def test_mean_up_time_statistics(self, env):
        rng = np.random.default_rng(5)
        stops, resumes = [], []
        FailureInjector(
            env, 0,
            NodeParameters(1.0, failure_rate=0.25, recovery_rate=1.0),
            rng,
            on_stop=lambda n, t: stops.append(t),
            on_resume=lambda n, t: resumes.append(t),
        )
        env.run(until=15_000.0)
        up_durations = [stops[0]] + [
            stop - resume for stop, resume in zip(stops[1:], resumes)
        ]
        assert np.mean(up_durations) == pytest.approx(4.0, rel=0.15)
