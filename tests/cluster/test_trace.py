"""Tests for queue-length and event tracing."""

import numpy as np
import pytest

from repro.cluster.trace import QueueTrace, SystemTrace, TraceEvent


class TestTraceEvent:
    def test_valid_event(self):
        event = TraceEvent(1.0, "failure", node=0)
        assert event.kind == "failure"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent(1.0, "explosion")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent(-1.0, "failure")


class TestQueueTrace:
    def test_records_series(self):
        trace = QueueTrace(0)
        trace.record(0.0, 10)
        trace.record(1.0, 9)
        times, values = trace.as_series()
        assert list(times) == [0.0, 1.0]
        assert list(values) == [10.0, 9.0]
        assert len(trace) == 2

    def test_on_grid(self):
        trace = QueueTrace(0)
        trace.record(0.0, 5)
        trace.record(2.0, 3)
        assert list(trace.on_grid([0.0, 1.0, 2.5])) == [5.0, 5.0, 3.0]

    def test_longest_flat_segment_detects_outage(self):
        trace = QueueTrace(0)
        # queue drains by one every second, then freezes for 10 s, then drains
        for t in range(5):
            trace.record(float(t), 10 - t)
        trace.record(15.0, 5)
        trace.record(16.0, 4)
        assert trace.longest_flat_segment() == pytest.approx(11.0)

    def test_longest_flat_segment_short_series(self):
        trace = QueueTrace(0)
        assert trace.longest_flat_segment() == 0.0
        trace.record(0.0, 1)
        assert trace.longest_flat_segment() == 0.0


class TestSystemTrace:
    def test_queue_recording_per_node(self):
        trace = SystemTrace(2)
        trace.record_queue(0, 0.0, 10)
        trace.record_queue(1, 0.0, 6)
        trace.record_queue(0, 1.0, 9)
        assert len(trace.queues[0]) == 2
        assert len(trace.queues[1]) == 1

    def test_event_filters(self):
        trace = SystemTrace(2)
        trace.record_event(TraceEvent(1.0, "failure", node=0))
        trace.record_event(TraceEvent(2.0, "recovery", node=0))
        trace.record_event(TraceEvent(3.0, "failure", node=1))
        trace.record_event(TraceEvent(4.0, "transfer_started", node=1))
        assert trace.failure_times() == [1.0, 3.0]
        assert trace.failure_times(node=0) == [1.0]
        assert trace.recovery_times(node=0) == [2.0]
        assert trace.transfer_started_times() == [4.0]
        assert len(trace.events_of_kind("failure")) == 2
