"""The sharded Monte-Carlo runner: plan → cache check → schedule → merge.

``run_sharded_spec`` is the distributed counterpart of
:func:`repro.montecarlo.parallel.run_monte_carlo_auto` for specs with
``shards >= 1``:

1. partition the ensemble into seed blocks
   (:func:`repro.distributed.plan.plan_blocks`);
2. serve every block already in the :class:`ShardStore` from disk —
   an interrupted sweep resumes from its completed blocks, and growing
   ``mc_realisations`` only computes the new blocks;
3. group the remaining blocks into at most ``spec.shards`` work items and
   dispatch them through a :class:`ShardScheduler` over the chosen
   executor (in-process, process pool, or the service's HTTP worker
   board);
4. merge everything in block order: completion times concatenate, the
   per-block :class:`~repro.montecarlo.statistics.RunningStatistics`
   states merge exactly, and the merged accumulator renders the summary.

Because block samples depend only on (master seed, block index, backend)
and the merge is exact, the returned estimate is bit-identical for every
shard count — the property the distributed test-suite pins with ``==``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Union

from repro.distributed.executors import ShardExecutor, resolve_executor
from repro.distributed.plan import (
    SeedBlock,
    block_key,
    plan_blocks,
    plan_shards,
    shard_plan_key,
)
from repro.distributed.scheduler import ShardScheduler
from repro.distributed.store import ShardStore
from repro.distributed.work import make_work_item
from repro.montecarlo.runner import MonteCarloEstimate
from repro.montecarlo.statistics import RunningStatistics
from repro.scenarios.spec import PolicySpec, ScenarioSpec


@dataclass
class ShardedRunReport:
    """A merged estimate plus the execution provenance of the run."""

    estimate: MonteCarloEstimate
    stats: RunningStatistics
    blocks_total: int
    blocks_cached: int
    shards_dispatched: int
    wall_seconds: float
    slot_completed: Dict[str, int] = field(default_factory=dict)

    @property
    def blocks_computed(self) -> int:
        return self.blocks_total - self.blocks_cached


def policy_spec_of(policy: Any) -> PolicySpec:
    """Describe a built policy instance as a serializable :class:`PolicySpec`.

    The inverse of :meth:`PolicySpec.build` for the built-in policies; it
    lets runners that construct policies programmatically (e.g. the
    delay-crossover duel, which pins analytically-optimised gains) ship
    them to remote workers inside a work item.
    """
    from repro.core.policies.baselines import (
        NoBalancing,
        ProportionalOneShot,
        SendAllOnFailure,
    )
    from repro.core.policies.lbp1 import LBP1
    from repro.core.policies.lbp2 import LBP2

    if isinstance(policy, LBP1):
        return PolicySpec(
            kind="lbp1",
            gain=float(policy.gain),
            sender=policy.sender,
            receiver=policy.receiver,
        )
    if isinstance(policy, LBP2):
        return PolicySpec(
            kind="lbp2", gain=float(policy.gain), compensate=policy.compensate
        )
    if isinstance(policy, NoBalancing):
        return PolicySpec(kind="none")
    if isinstance(policy, ProportionalOneShot):
        return PolicySpec(kind="proportional")
    if isinstance(policy, SendAllOnFailure):
        return PolicySpec(kind="send_all")
    raise ValueError(
        f"cannot serialize policy {policy!r} into a PolicySpec; sharded "
        "execution only ships the built-in policy kinds"
    )


def int_seed(seed: Any) -> int:
    """Collapse any seed-like value to a deterministic non-negative int.

    Sharded work items travel as JSON, so their master seed must be an
    integer; a :class:`numpy.random.SeedSequence` (e.g. a spawned child) is
    reduced through its own generated state, which is stable across
    processes and platforms.
    """
    import numpy as np

    if seed is None:
        return 0
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    if isinstance(seed, np.random.SeedSequence):
        return int(seed.generate_state(1, np.uint64)[0] >> 1)
    raise TypeError(f"cannot reduce seed {seed!r} to an integer")


def run_sharded_spec(
    spec: ScenarioSpec,
    executor: Union[None, str, ShardExecutor] = None,
    workers: Optional[int] = None,
    store: Optional[ShardStore] = None,
    use_store: bool = True,
    refresh: bool = False,
    confidence_level: float = 0.95,
    assignment: str = "least-loaded",
    max_attempts: int = 3,
    shard_timeout: Optional[float] = None,
    slot_wait: float = 60.0,
    on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> ShardedRunReport:
    """Run a sharded Monte-Carlo ensemble and merge it deterministically.

    ``executor`` accepts a name (``inline``/``process``) or a live
    :class:`ShardExecutor` instance (the service passes its worker-board
    executor here); instances are left open, named executors are closed
    after the run.  ``use_store=False`` disables shard-level caching (the
    benchmark harness measures computation, not disk reads); ``refresh``
    recomputes every block but still persists the results — how a
    ``--force`` run repairs the shard store.
    """
    if spec.shards < 1:
        raise ValueError(
            f"spec {spec.name!r} has shards={spec.shards}; the sharded "
            "runner needs shards >= 1"
        )
    import numpy as np

    started = perf_counter()
    blocks = plan_blocks(spec.mc_realisations, spec.shard_block)
    plan_key = shard_plan_key(spec)
    spec_dict = spec.to_dict()

    if use_store:
        store = store if store is not None else ShardStore()
    else:
        store = None

    merged_blocks: Dict[int, Dict[str, Any]] = {}
    missing: List[SeedBlock] = []
    for block in blocks:
        payload = (
            store.get(block_key(plan_key, block))
            if store is not None and not refresh
            else None
        )
        if payload is not None:
            merged_blocks[block.index] = payload
        else:
            missing.append(block)
    if merged_blocks and on_event is not None:
        on_event(
            {
                "event": "cached",
                "blocks_cached": len(merged_blocks),
                "blocks_total": len(blocks),
            }
        )

    shards = plan_shards(missing, spec.shards)
    slot_completed: Dict[str, int] = {}
    if shards:
        items = {
            shard.index: make_work_item(
                item_id="",  # the scheduler stamps a fresh id per attempt
                task_id=plan_key[:16],
                shard_index=shard.index,
                spec_dict=spec_dict,
                blocks=list(shard.blocks),
                confidence_level=confidence_level,
            )
            for shard in shards
        }
        def absorb_shard(shard_index: int, shard_result: Dict[str, Any]) -> None:
            """Merge and persist a shard's blocks the moment it completes.

            Running inside the scheduler loop means an interrupted or
            partially-failed run keeps every block that did finish — the
            resume guarantee.
            """
            for payload in shard_result["blocks"]:
                merged_blocks[int(payload["index"])] = payload
                if store is not None:
                    block = SeedBlock(
                        index=int(payload["index"]),
                        start=int(payload["start"]),
                        stop=int(payload["stop"]),
                    )
                    store.put(block_key(plan_key, block), payload)

        resolved = resolve_executor(executor, workers=workers)
        owns_executor = not isinstance(executor, ShardExecutor)
        scheduler = ShardScheduler(
            resolved,
            assignment=assignment,
            max_attempts=max_attempts,
            shard_timeout=shard_timeout,
            slot_wait=slot_wait,
            on_event=on_event,
            on_result=absorb_shard,
        )
        try:
            scheduler.run(items)
        finally:
            if owns_executor:
                resolved.close()
        slot_completed = dict(scheduler.slot_completed)

    ordered = [merged_blocks[block.index] for block in blocks]
    times = np.concatenate(
        [np.asarray(payload["completion_times"], dtype=float) for payload in ordered]
    )
    stats = RunningStatistics.merged(
        RunningStatistics.from_dict(payload["stats"]) for payload in ordered
    )
    estimate = MonteCarloEstimate(
        policy_name=str(ordered[0]["policy"]),
        workload=tuple(spec.workload),
        completion_times=times,
        summary=stats.to_summary(confidence_level),
        results=[],
    )
    return ShardedRunReport(
        estimate=estimate,
        stats=stats,
        blocks_total=len(blocks),
        blocks_cached=len(blocks) - len(missing),
        shards_dispatched=len(shards),
        wall_seconds=perf_counter() - started,
        slot_completed=slot_completed,
    )
