"""Tests for the event primitives of the DES kernel."""

import pytest

from repro.sim.engine import Environment
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.exceptions import SimulationError


class TestEventLifecycle:
    def test_new_event_is_untriggered(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed
        assert event.ok

    def test_value_unavailable_before_trigger(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_succeed_sets_value(self, env):
        event = env.event()
        event.succeed(42)
        assert event.triggered
        assert event.value == 42

    def test_succeed_twice_raises(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_fail_records_exception(self, env):
        event = env.event()
        error = RuntimeError("boom")
        event.fail(error)
        assert event.triggered
        assert not event.ok
        assert event.value is error

    def test_fail_after_trigger_raises(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.fail(RuntimeError())

    def test_processed_after_step(self, env):
        event = env.event()
        event.succeed("done")
        env.run()
        assert event.processed

    def test_defuse_marks_failure_handled(self, env):
        event = env.event()
        assert not event.defused()
        event.defuse()
        assert event.defused()

    def test_unhandled_failure_raises_from_run(self, env):
        event = env.event()
        event.fail(ValueError("unhandled"))
        with pytest.raises(ValueError, match="unhandled"):
            env.run()

    def test_defused_failure_does_not_raise(self, env):
        event = env.event()
        event.fail(ValueError("handled"))
        event.defuse()
        env.run()  # must not raise


class TestTimeout:
    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_zero_delay_fires_immediately(self, env):
        timeout = env.timeout(0.0, value="now")
        env.run()
        assert timeout.processed
        assert env.now == 0.0

    def test_delay_advances_clock(self, env):
        env.timeout(3.5)
        env.run()
        assert env.now == pytest.approx(3.5)

    def test_timeout_value_carried(self, env):
        timeout = env.timeout(1.0, value={"payload": 1})
        env.run()
        assert timeout.value == {"payload": 1}

    def test_delay_property(self, env):
        assert env.timeout(2.5).delay == 2.5

    def test_timeouts_fire_in_order(self, env):
        order = []
        first = env.timeout(1.0)
        second = env.timeout(2.0)
        first.callbacks.append(lambda e: order.append("first"))
        second.callbacks.append(lambda e: order.append("second"))
        env.run()
        assert order == ["first", "second"]

    def test_simultaneous_timeouts_fifo(self, env):
        order = []
        a = env.timeout(1.0)
        b = env.timeout(1.0)
        a.callbacks.append(lambda e: order.append("a"))
        b.callbacks.append(lambda e: order.append("b"))
        env.run()
        assert order == ["a", "b"]


class TestConditions:
    def test_any_of_triggers_on_first(self, env):
        def proc(env):
            result = yield env.timeout(1, "x") | env.timeout(5, "y")
            return list(result.values())

        process = env.process(proc(env))
        env.run()
        assert process.value == ["x"]

    def test_all_of_waits_for_all(self, env):
        def proc(env):
            result = yield env.timeout(1, "x") & env.timeout(5, "y")
            return sorted(result.values())

        process = env.process(proc(env))
        env.run()
        assert process.value == ["x", "y"]
        assert env.now == pytest.approx(5.0)

    def test_all_of_empty_list_triggers_immediately(self, env):
        condition = AllOf(env, [])
        env.run()
        assert condition.processed
        assert condition.value == {}

    def test_any_of_empty_list_triggers_immediately(self, env):
        condition = AnyOf(env, [])
        env.run()
        assert condition.processed

    def test_condition_with_already_processed_event(self, env):
        timeout = env.timeout(0.0, "early")
        env.run()
        condition = AllOf(env, [timeout])
        env.run()
        assert condition.processed
        assert condition.value[timeout] == "early"

    def test_condition_mixing_environments_rejected(self, env):
        other = Environment()
        with pytest.raises(SimulationError):
            AllOf(env, [env.event(), other.event()])

    def test_condition_propagates_failure(self, env):
        failing = env.event()
        failing.fail(RuntimeError("inner"))

        def proc(env, failing):
            try:
                yield env.all_of([failing, env.timeout(1)])
            except RuntimeError as error:
                return str(error)

        process = env.process(proc(env, failing))
        env.run()
        assert process.value == "inner"

    def test_env_helpers_build_conditions(self, env):
        assert isinstance(env.all_of([env.event()]), AllOf)
        assert isinstance(env.any_of([env.event()]), AnyOf)
