"""Tests for the mergeable accumulators behind sharded Monte-Carlo."""

import math

import numpy as np
import pytest

from repro.montecarlo.statistics import (
    ExactSum,
    MergeableHistogram,
    QuantileSketch,
    RunningStatistics,
    summarize,
)


def _sample(n=200, seed=42):
    rng = np.random.default_rng(seed)
    return rng.exponential(scale=100.0, size=n)


class TestExactSum:
    def test_matches_fsum(self):
        values = list(_sample())
        acc = ExactSum()
        for v in values:
            acc.add(v)
        assert acc.value == math.fsum(values)

    def test_merge_is_partition_invariant(self):
        values = list(_sample(401))
        whole = ExactSum()
        for v in values:
            whole.add(v)
        for split in (1, 7, 100):
            parts = []
            for chunk in np.array_split(values, split):
                part = ExactSum()
                for v in chunk:
                    part.add(v)
                parts.append(part)
            merged = ExactSum()
            for part in parts:
                merged.merge(part)
            assert merged.value == whole.value

    def test_catches_naive_sum_error(self):
        """A sample designed so left-to-right float addition is wrong."""
        values = [1e16, 1.0, -1e16, 1.0]
        acc = ExactSum()
        for v in values:
            acc.add(v)
        assert acc.value == 2.0
        assert sum(values) != 2.0  # the naive sum loses the small addends


class TestRunningStatistics:
    def test_streaming_matches_moments(self):
        values = _sample()
        acc = RunningStatistics.from_values(values)
        assert acc.n == values.size
        assert acc.mean == pytest.approx(float(values.mean()), rel=1e-12)
        assert acc.variance == pytest.approx(float(values.var(ddof=1)), rel=1e-9)
        assert acc.minimum == values.min()
        assert acc.maximum == values.max()

    @pytest.mark.parametrize("splits", [1, 2, 7, 31])
    def test_merge_bit_identical_across_partitions(self, splits):
        values = _sample(157)
        whole = RunningStatistics.from_values(values)
        merged = RunningStatistics.merged(
            RunningStatistics.from_values(chunk)
            for chunk in np.array_split(values, splits)
        )
        assert merged.to_summary() == whole.to_summary()

    def test_summary_close_to_summarize(self):
        """The accumulator's CI agrees with the whole-sample estimator."""
        values = _sample()
        summary = RunningStatistics.from_values(values).to_summary()
        reference = summarize(values)
        assert summary.n == reference.n
        assert summary.mean == pytest.approx(reference.mean, rel=1e-12)
        assert summary.std == pytest.approx(reference.std, rel=1e-9)
        assert summary.ci_low == pytest.approx(reference.ci_low, rel=1e-9)
        assert summary.ci_high == pytest.approx(reference.ci_high, rel=1e-9)

    def test_json_round_trip_is_exact(self):
        import json

        acc = RunningStatistics.from_values(_sample(37))
        payload = json.loads(json.dumps(acc.to_dict()))
        restored = RunningStatistics.from_dict(payload)
        assert restored.to_summary() == acc.to_summary()

    def test_empty_accumulator_refuses_summary(self):
        with pytest.raises(ValueError):
            RunningStatistics().to_summary()

    def test_single_value(self):
        acc = RunningStatistics.from_values([3.5])
        summary = acc.to_summary()
        assert summary.mean == 3.5
        assert summary.std == 0.0
        assert summary.ci_low == summary.ci_high == 3.5


class TestMergeableHistogram:
    def test_counts_and_outliers(self):
        hist = MergeableHistogram(low=0.0, high=10.0, bins=10)
        hist.update_many([-1.0, 0.0, 0.5, 5.5, 9.99, 10.0, 42.0])
        assert hist.underflow == 1
        assert hist.overflow == 2
        assert sum(hist.counts) == 4
        assert hist.counts[0] == 2  # 0.0 and 0.5
        assert hist.counts[5] == 1  # 5.5

    def test_merge_adds_counts_exactly(self):
        values = _sample(300)
        whole = MergeableHistogram(low=0.0, high=500.0, bins=25)
        whole.update_many(values)
        merged = MergeableHistogram(low=0.0, high=500.0, bins=25)
        for chunk in np.array_split(values, 7):
            part = MergeableHistogram(low=0.0, high=500.0, bins=25)
            part.update_many(chunk)
            merged.merge(part)
        assert merged.counts == whole.counts
        assert merged.overflow == whole.overflow

    def test_incompatible_layouts_refuse_merge(self):
        a = MergeableHistogram(low=0.0, high=1.0, bins=4)
        b = MergeableHistogram(low=0.0, high=2.0, bins=4)
        with pytest.raises(ValueError):
            a.merge(b)


class TestQuantileSketch:
    def test_extremes_are_exact_and_median_close(self):
        values = _sample(2000)
        sketch = QuantileSketch.with_range(0.0, 1000.0, bins=256)
        sketch.update_many(values)
        assert sketch.quantile(0.0) == values.min()
        assert sketch.quantile(1.0) == values.max()
        median = float(np.median(values))
        assert sketch.quantile(0.5) == pytest.approx(median, rel=0.1)

    def test_merge_is_partition_invariant(self):
        values = _sample(500)
        whole = QuantileSketch.with_range(0.0, 1000.0, bins=64)
        whole.update_many(values)
        merged = QuantileSketch.with_range(0.0, 1000.0, bins=64)
        for chunk in np.array_split(values, 9):
            part = QuantileSketch.with_range(0.0, 1000.0, bins=64)
            part.update_many(chunk)
            merged.merge(part)
        for q in (0.1, 0.5, 0.9):
            assert merged.quantile(q) == whole.quantile(q)

    def test_empty_sketch_refuses_query(self):
        with pytest.raises(ValueError):
            QuantileSketch.with_range(0.0, 1.0).quantile(0.5)
