"""Optimal gain and sender/receiver selection.

LBP-1's free parameters are the gain ``K`` and the sender/receiver pair;
the paper selects them by minimising the model-predicted mean overall
completion time (Section 2.1.1, Fig. 3, Table 1).  LBP-2's initial gain is
selected the same way but under the *no-failure* model and with the
excess-load transfer rule of eqs. (6)–(7) (Table 2).

The optimisation itself is a one-dimensional search over a user-supplied
gain grid (the paper uses steps of 0.05), combined — when the caller does
not pin the pair — with an exhaustive comparison of the two possible
sender/receiver assignments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.completion_time import CompletionTimeSolver
from repro.core.nofailure import no_failure_solver
from repro.core.parameters import SystemParameters, validate_workload
from repro.core.policies.excess import excess_loads, partition_fractions
from repro.core.policies.lbp1 import LBP1
from repro.core.policies.lbp2 import LBP2

__all__ = [
    "GainOptimizationResult",
    "default_gain_grid",
    "optimal_gain_lbp1",
    "optimal_gain_no_failure",
    "optimal_gain_lbp2_initial",
    "optimal_lbp1_policy",
    "optimal_lbp2_policy",
]


def default_gain_grid(step: float = 0.05) -> np.ndarray:
    """The gain grid used by the paper's sweeps: 0 to 1 in steps of ``step``."""
    if not 0 < step <= 1:
        raise ValueError(f"step must lie in (0, 1], got {step!r}")
    count = int(round(1.0 / step))
    return np.linspace(0.0, 1.0, count + 1)


@dataclass(frozen=True)
class GainOptimizationResult:
    """Outcome of a gain optimisation."""

    optimal_gain: float
    optimal_mean: float
    sender: int
    receiver: int
    gains: np.ndarray
    means: np.ndarray
    workload: Tuple[int, int]

    def __post_init__(self) -> None:
        gains = np.asarray(self.gains, dtype=float)
        means = np.asarray(self.means, dtype=float)
        object.__setattr__(self, "gains", gains)
        object.__setattr__(self, "means", means)
        if gains.shape != means.shape:
            raise ValueError("gains and means must have matching shapes")

    @property
    def transfer_size(self) -> int:
        """Number of tasks the optimal configuration transfers at ``t = 0``."""
        return int(round(self.optimal_gain * self.workload[self.sender]))


def _sweep_pair(
    solver: CompletionTimeSolver,
    workload: Tuple[int, ...],
    gains: np.ndarray,
    sender: int,
    receiver: int,
) -> np.ndarray:
    return solver.gain_sweep(workload, gains, sender=sender, receiver=receiver)


def optimal_gain_lbp1(
    params: SystemParameters,
    workload: Sequence[int],
    gains: Optional[Sequence[float]] = None,
    sender: Optional[int] = None,
    receiver: Optional[int] = None,
    method: str = "vectorized",
    solver: Optional[CompletionTimeSolver] = None,
) -> GainOptimizationResult:
    """Minimise the model-predicted mean completion time of LBP-1.

    When ``sender``/``receiver`` are omitted, both assignments are evaluated
    and the better one is returned (this is how the paper determines that the
    more loaded node should send for every workload of Table 1).
    """
    loads = validate_workload(workload, params)
    grid = np.asarray(gains if gains is not None else default_gain_grid(), dtype=float)
    if grid.size == 0:
        raise ValueError("the gain grid must contain at least one value")
    if np.any((grid < 0) | (grid > 1)):
        raise ValueError("gains must lie in [0, 1]")
    solver = solver if solver is not None else CompletionTimeSolver(params, method=method)

    if sender is not None or receiver is not None:
        pairs = [(sender, receiver)]
    else:
        pairs = [(0, 1), (1, 0)]

    best: Optional[GainOptimizationResult] = None
    for snd, rcv in pairs:
        means = _sweep_pair(solver, loads, grid, snd, rcv)
        idx = int(np.argmin(means))
        candidate = GainOptimizationResult(
            optimal_gain=float(grid[idx]),
            optimal_mean=float(means[idx]),
            sender=snd,
            receiver=rcv,
            gains=grid,
            means=means,
            workload=(loads[0], loads[1]),
        )
        if best is None or candidate.optimal_mean < best.optimal_mean:
            best = candidate
    assert best is not None
    return best


def optimal_gain_no_failure(
    params: SystemParameters,
    workload: Sequence[int],
    gains: Optional[Sequence[float]] = None,
    sender: Optional[int] = None,
    receiver: Optional[int] = None,
    method: str = "vectorized",
) -> GainOptimizationResult:
    """Optimal LBP-1 gain when failures are ignored (the Fig. 3 reference curve)."""
    return optimal_gain_lbp1(
        params.without_failures(),
        workload,
        gains=gains,
        sender=sender,
        receiver=receiver,
        method=method,
    )


def optimal_gain_lbp2_initial(
    params: SystemParameters,
    workload: Sequence[int],
    gains: Optional[Sequence[float]] = None,
    method: str = "vectorized",
) -> GainOptimizationResult:
    """Optimal gain of LBP-2's *initial* (failure-oblivious) balancing action.

    The transfer size follows the excess-load rule ``L = K p_ij L^excess_j``
    (eqs. (6)–(7)) and the objective is the mean completion time of the
    *no-failure* model, exactly as prescribed in Section 2.2.  Only two-node
    systems are supported (the multi-node initial action is evaluated by
    simulation in :mod:`repro.core.multinode`).
    """
    params.require_two_nodes()
    loads = validate_workload(workload, params)
    grid = np.asarray(gains if gains is not None else default_gain_grid(), dtype=float)
    if np.any((grid < 0) | (grid > 1)):
        raise ValueError("gains must lie in [0, 1]")

    excesses = excess_loads(loads, params)
    sender = int(np.argmax(excesses))
    receiver = 1 - sender
    excess = excesses[sender]
    fraction = partition_fractions(loads, params, sender)[receiver]

    solver = no_failure_solver(params, method=method)
    means = []
    for gain in grid:
        batch = min(int(round(gain * fraction * excess)), loads[sender])
        remaining = list(loads)
        remaining[sender] -= batch
        means.append(
            solver.mean_completion_time(
                tasks=remaining, in_transit=batch, destination=receiver
            )
        )
    means_arr = np.asarray(means)
    idx = int(np.argmin(means_arr))
    return GainOptimizationResult(
        optimal_gain=float(grid[idx]),
        optimal_mean=float(means_arr[idx]),
        sender=sender,
        receiver=receiver,
        gains=grid,
        means=means_arr,
        workload=(loads[0], loads[1]),
    )


def optimal_lbp1_policy(
    params: SystemParameters,
    workload: Sequence[int],
    gains: Optional[Sequence[float]] = None,
    method: str = "vectorized",
) -> Tuple[LBP1, GainOptimizationResult]:
    """A ready-to-run LBP-1 policy tuned for ``workload`` plus the search result."""
    result = optimal_gain_lbp1(params, workload, gains=gains, method=method)
    policy = LBP1(result.optimal_gain, sender=result.sender, receiver=result.receiver)
    return policy, result


def optimal_lbp2_policy(
    params: SystemParameters,
    workload: Sequence[int],
    gains: Optional[Sequence[float]] = None,
    method: str = "vectorized",
) -> Tuple[LBP2, GainOptimizationResult]:
    """A ready-to-run LBP-2 policy with its initial gain tuned for ``workload``."""
    result = optimal_gain_lbp2_initial(params, workload, gains=gains, method=method)
    policy = LBP2(result.optimal_gain)
    return policy, result
