"""Tests for seed-block planning and shard-cache key derivation."""

import numpy as np
import pytest

from repro.distributed.plan import (
    SeedBlock,
    block_key,
    block_seed,
    plan_blocks,
    plan_shards,
    shard_plan_key,
)
from repro.scenarios.spec import PolicySpec, ScenarioSpec, SystemSpec


def _spec(**overrides):
    base = ScenarioSpec(
        name="plan-test",
        kind="mc_point",
        system=SystemSpec.paper(),
        workload=(10, 6),
        policy=PolicySpec(kind="lbp1", gain=0.35, sender=0, receiver=1),
        mc_realisations=20,
        seed=7,
        shards=2,
        shard_block=4,
    )
    return base.with_(**overrides) if overrides else base


class TestBlockPlanning:
    def test_blocks_cover_ensemble_without_overlap(self):
        blocks = plan_blocks(21, 4)
        assert [b.to_item() for b in blocks] == [
            (0, 0, 4), (1, 4, 8), (2, 8, 12), (3, 12, 16), (4, 16, 20), (5, 20, 21),
        ]
        assert sum(b.num_realisations for b in blocks) == 21

    def test_single_block_when_block_size_exceeds_ensemble(self):
        blocks = plan_blocks(5, 32)
        assert len(blocks) == 1 and blocks[0].to_item() == (0, 0, 5)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            plan_blocks(0, 4)
        with pytest.raises(ValueError):
            plan_blocks(4, 0)

    def test_growing_the_ensemble_keeps_full_block_prefix(self):
        """The delta property: old full blocks keep index *and* range."""
        small = plan_blocks(64, 32)
        large = plan_blocks(96, 32)
        assert large[: len(small)] == small


class TestShardPartitioning:
    def test_even_contiguous_split(self):
        blocks = plan_blocks(28, 4)  # 7 blocks
        shards = plan_shards(blocks, 3)
        assert [s.block_indices for s in shards] == [(0, 1, 2), (3, 4), (5, 6)]

    def test_shard_count_capped_at_block_count(self):
        blocks = plan_blocks(8, 4)  # 2 blocks
        shards = plan_shards(blocks, 7)
        assert len(shards) == 2

    def test_one_shard_takes_everything(self):
        blocks = plan_blocks(20, 4)
        (shard,) = plan_shards(blocks, 1)
        assert shard.block_indices == (0, 1, 2, 3, 4)
        assert shard.num_realisations == 20


class TestBlockSeeds:
    def test_depends_only_on_master_and_index(self):
        a = block_seed(7, 3)
        b = block_seed(7, 3)
        assert a.entropy == b.entropy and a.spawn_key == b.spawn_key
        assert block_seed(7, 4).spawn_key != a.spawn_key
        assert block_seed(8, 3).entropy != a.entropy

    def test_distinct_from_realisation_spawns(self):
        """Block streams never collide with plain spawned children."""
        master = np.random.SeedSequence(7)
        children = master.spawn(10)
        block = block_seed(7, 0)
        assert all(block.spawn_key != child.spawn_key for child in children)

    def test_accepts_seed_sequence_master(self):
        child = np.random.SeedSequence(5, spawn_key=(2,))
        seed = block_seed(child, 1)
        assert seed.spawn_key[:1] == (2,)


class TestShardCacheKeys:
    def test_plan_key_ignores_shard_grouping_and_size(self):
        base = shard_plan_key(_spec())
        assert shard_plan_key(_spec(shards=7)) == base
        assert shard_plan_key(_spec(mc_realisations=40)) == base
        assert shard_plan_key(_spec(shard_block=8)) == base
        assert shard_plan_key(_spec(name="renamed")) == base

    def test_plan_key_tracks_everything_that_changes_samples(self):
        base = shard_plan_key(_spec())
        assert shard_plan_key(_spec(seed=8)) != base
        assert shard_plan_key(_spec(backend="vectorized")) != base
        assert shard_plan_key(_spec(workload=(10, 7))) != base
        assert (
            shard_plan_key(_spec(policy=PolicySpec(kind="lbp2", gain=1.0))) != base
        )

    def test_block_keys_distinguish_index_and_range(self):
        plan = shard_plan_key(_spec())
        k = block_key(plan, SeedBlock(0, 0, 4))
        assert block_key(plan, SeedBlock(1, 4, 8)) != k
        assert block_key(plan, SeedBlock(0, 0, 8)) != k
        assert block_key(plan, SeedBlock(0, 0, 4)) == k
