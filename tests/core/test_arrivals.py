"""Tests for the dynamic (external-arrival) extension."""

import numpy as np
import pytest

from repro.core.arrivals import ArrivalProcessConfig, DynamicSystem
from repro.core.parameters import NodeParameters, SystemParameters, TransferDelayModel
from repro.core.policies import LBP1, LBP2, NoBalancing


def small_params():
    return SystemParameters(
        nodes=(
            NodeParameters(4.0, failure_rate=0.05, recovery_rate=0.2),
            NodeParameters(2.0, failure_rate=0.05, recovery_rate=0.2),
        ),
        delay=TransferDelayModel(0.01),
    )


class TestArrivalConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalProcessConfig(rate=0.0)
        with pytest.raises(ValueError):
            ArrivalProcessConfig(rate=1.0, mean_batch_size=0.5)
        with pytest.raises(ValueError):
            ArrivalProcessConfig(rate=1.0, assignment="random-walk")

    def test_valid_config(self):
        config = ArrivalProcessConfig(rate=0.5, mean_batch_size=5, assignment="fastest")
        assert config.rate == 0.5


class TestDynamicSystem:
    def test_runs_and_reports_metrics(self):
        system = DynamicSystem(
            small_params(),
            LBP2(1.0),
            ArrivalProcessConfig(rate=0.2, mean_batch_size=10),
            seed=1,
        )
        result = system.run(horizon=300.0)
        assert result.jobs_arrived > 0
        assert result.tasks_arrived >= result.jobs_arrived
        assert 0 < result.tasks_completed <= result.tasks_arrived
        assert result.balancing_episodes == result.jobs_arrived
        assert result.throughput > 0
        assert np.isfinite(result.mean_sojourn_time)

    def test_horizon_must_be_positive(self):
        system = DynamicSystem(
            small_params(), NoBalancing(), ArrivalProcessConfig(rate=0.1), seed=0
        )
        with pytest.raises(ValueError):
            system.run(horizon=0.0)

    def test_reproducibility(self):
        def run(seed):
            system = DynamicSystem(
                small_params(), LBP1(0.5), ArrivalProcessConfig(rate=0.2), seed=seed
            )
            return system.run(horizon=200.0).tasks_completed

        assert run(7) == run(7)
        assert run(7) != run(8) or run(7) > 0  # different seeds usually differ

    def test_balancing_reduces_sojourn_time_for_hot_spot_arrivals(self):
        """All jobs land on the slow node: re-balancing must help."""
        params = small_params()
        arrivals = ArrivalProcessConfig(rate=0.1, mean_batch_size=20, assignment="slowest")

        def sojourn(policy, seed):
            system = DynamicSystem(params, policy, arrivals, seed=seed)
            return system.run(horizon=600.0).mean_sojourn_time

        unbalanced = np.mean([sojourn(NoBalancing(), s) for s in range(5)])
        balanced = np.mean([sojourn(LBP1(0.8), s) for s in range(5)])
        assert balanced < unbalanced

    def test_assignment_rules(self):
        params = small_params()
        for rule in ("uniform", "fastest", "slowest"):
            system = DynamicSystem(
                params,
                NoBalancing(),
                ArrivalProcessConfig(rate=0.3, mean_batch_size=5, assignment=rule),
                seed=3,
            )
            result = system.run(horizon=100.0)
            assert result.jobs_arrived > 0
