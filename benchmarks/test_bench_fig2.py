"""Benchmark: regenerate Fig. 2 (transfer-delay pdf and mean delay vs size)."""

import pytest

from repro.experiments.fig2_delay_pdf import run as run_fig2


@pytest.mark.benchmark(group="fig2")
def test_fig2_channel_probing(benchmark, bench_once):
    result = bench_once(benchmark, run_fig2, probes_per_size=30, seed=202)
    print()
    print(result.render())
    # Shape checks: ~0.02 s/task slope and a convincing linear fit.
    assert result.regression.slope == pytest.approx(0.02, rel=0.25)
    assert result.regression.r_squared > 0.7
    assert result.probe_mean_delays[-1] > result.probe_mean_delays[0]
