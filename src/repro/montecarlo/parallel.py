"""Deprecated process-pool shims over the unified Monte-Carlo engine.

Historically this module owned its own per-realisation process pool (seed
spawning, pool capping, end-of-run ``summarize``).  All of that now lives
in :mod:`repro.montecarlo.engine`: a pooled run is the same block-planned
pipeline as a serial or sharded one, executed over process slots, with
exactly-merged statistics.  The entry points below survive as thin
deprecated shims so existing callers keep working; each warns once per
process.
"""

from __future__ import annotations

from concurrent.futures import Executor
from typing import TYPE_CHECKING, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import ExecutionBackend

from repro.cluster.workload import Workload
from repro.core.parameters import SystemParameters
from repro.core.policies.base import LoadBalancingPolicy
from repro.montecarlo.engine import EngineRequest, run_engine, warn_legacy
from repro.montecarlo.runner import MonteCarloEstimate
from repro.sim.rng import SeedLike


def run_monte_carlo_auto(
    params: SystemParameters,
    policy: LoadBalancingPolicy,
    workload: Union[Workload, Sequence[int]],
    num_realisations: int,
    seed: SeedLike = None,
    horizon: Optional[float] = None,
    workers: Optional[int] = None,
    executor: Optional[Executor] = None,
    backend: Union[None, str, "ExecutionBackend"] = None,
    **system_kwargs,
) -> MonteCarloEstimate:
    """Backend- and pool-aware Monte-Carlo estimate.

    .. deprecated::
        Every combination of ``workers``/``executor``/``backend`` now maps
        onto one :func:`~repro.montecarlo.engine.run_engine` call; this
        shim only translates the legacy signature.  Results are identical
        across all execution modes (block-planned sampling, exact merge).
    """
    warn_legacy("run_monte_carlo_auto")
    return run_engine(
        EngineRequest(
            params=params,
            policy=policy,
            workload=tuple(workload),
            num_realisations=num_realisations,
            seed=seed,
            backend=backend,
            horizon=horizon,
            system_kwargs=system_kwargs,
            executor=executor,
            workers=workers,
        )
    ).estimate


def run_monte_carlo_parallel(
    params: SystemParameters,
    policy: LoadBalancingPolicy,
    workload: Union[Workload, Sequence[int]],
    num_realisations: int,
    seed: SeedLike = None,
    horizon: Optional[float] = None,
    max_workers: Optional[int] = None,
    executor: Optional[Executor] = None,
    confidence_level: float = 0.95,
    **system_kwargs,
) -> MonteCarloEstimate:
    """Process-pool Monte-Carlo estimate.

    .. deprecated::
        Shim over the engine's process executor.  An externally-managed
        ``executor`` is wrapped and reused as-is (never shut down here);
        ``max_workers <= 1`` runs inline.  Because the engine's block
        seeding is executor-independent, the estimate is bit-identical
        whichever path runs it.
    """
    warn_legacy("run_monte_carlo_parallel")
    if executor is not None:
        engine_executor: object = executor
        workers = max_workers
    elif max_workers is not None and max_workers <= 1:
        engine_executor = "inline"
        workers = None
    else:
        import os

        # Preserve this entry point's historical default of one worker per
        # CPU (the engine's implicit default is politer); the engine still
        # caps the pool at the work-item count.
        engine_executor = "process"
        workers = max_workers if max_workers is not None else os.cpu_count() or 1
    return run_engine(
        EngineRequest(
            params=params,
            policy=policy,
            workload=tuple(workload),
            num_realisations=num_realisations,
            seed=seed,
            horizon=horizon,
            system_kwargs=system_kwargs,
            confidence_level=confidence_level,
            executor=engine_executor,
            workers=workers,
        )
    ).estimate
