"""Tests for plain-text rendering of tables and series."""

import pytest

from repro.analysis.reporting import format_ascii_curve, format_series, format_table
from repro.analysis.tables import Table


class TestFormatTable:
    def test_renders_title_header_and_rows(self):
        table = Table(["name", "value"], title="My table")
        table.add_row({"name": "alpha", "value": 1.5})
        text = format_table(table)
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert "name" in lines[1] and "value" in lines[1]
        assert "alpha" in lines[3] and "1.50" in lines[3]

    def test_accepts_list_of_dicts(self):
        text = format_table([{"a": 1, "b": 2.0}, {"a": 3, "b": 4.0}])
        assert "a" in text and "4.00" in text

    def test_empty_list_of_dicts(self):
        assert format_table([], title="empty") == "empty"

    def test_nan_rendered(self):
        text = format_table([{"a": float("nan")}])
        assert "nan" in text

    def test_custom_float_format(self):
        text = format_table([{"a": 1.23456}], float_format="{:.4f}")
        assert "1.2346" in text


class TestFormatSeries:
    def test_two_columns(self):
        text = format_series([1.0, 2.0], [10.0, 20.0], x_label="t", y_label="q")
        assert "t" in text and "q" in text
        assert "10.000" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            format_series([1.0], [1.0, 2.0])


class TestAsciiCurve:
    def test_renders_bars(self):
        text = format_ascii_curve([0.0, 1.0, 2.0], [0.0, 5.0, 10.0], width=20, label="curve")
        lines = text.splitlines()
        assert lines[0] == "curve"
        assert lines[1].count("#") == 0
        assert lines[-1].count("#") == 20

    def test_empty_input(self):
        assert format_ascii_curve([], [], label="x") == "x"

    def test_constant_series_does_not_crash(self):
        text = format_ascii_curve([0.0, 1.0], [3.0, 3.0])
        assert "3.000" in text
