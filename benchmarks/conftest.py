"""Shared configuration of the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (or an
ablation of a design choice).  The functions under test are full experiment
drivers, so each benchmark executes a single round — the interesting output
is the regenerated table/series (printed to stdout, compare against
EXPERIMENTS.md) together with the wall-clock time pytest-benchmark records.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def bench_once():
    """Fixture exposing the single-round benchmark helper."""
    return run_once
