"""Fig. 3 — mean overall completion time vs. LB gain ``K`` under LBP-1.

The paper plots four curves for the (100, 60) workload: the theoretical
prediction with node failure, the Monte-Carlo estimate, the wireless-LAN
experiment, and the theoretical no-failure reference.  The minima fall at
``K = 0.35`` (failure) and ``K = 0.45`` (no failure), with a minimum mean
completion time of about 117 s.

This driver regenerates all four series: theory and no-failure theory from
the regeneration model, "simulation" from the Monte-Carlo harness, and
"experiment" from the test-bed emulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.tables import Table
from repro.core.completion_time import CompletionTimeSolver
from repro.core.parameters import SystemParameters
from repro.core.policies.lbp1 import LBP1
from repro.experiments import common
from repro.montecarlo.engine import EngineRequest, run_engine
from repro.sim.rng import spawn_seeds
from repro.testbed.experiment import TestbedExperiment


@dataclass
class Fig3Result:
    """All four curves of Fig. 3 on a common gain grid."""

    gains: np.ndarray
    theory: np.ndarray
    theory_no_failure: np.ndarray
    monte_carlo: np.ndarray
    experiment: np.ndarray
    workload: tuple

    @property
    def optimal_gain_theory(self) -> float:
        """Gain minimising the failure-aware theoretical curve."""
        return float(self.gains[int(np.argmin(self.theory))])

    @property
    def optimal_gain_no_failure(self) -> float:
        """Gain minimising the no-failure theoretical curve."""
        return float(self.gains[int(np.argmin(self.theory_no_failure))])

    @property
    def minimum_mean_completion_time(self) -> float:
        """Minimum of the failure-aware theoretical curve."""
        return float(self.theory.min())

    def as_table(self) -> Table:
        """The four series as one table with a row per gain value."""
        table = Table(
            ["gain", "theory", "monte_carlo", "experiment", "theory_no_failure"],
            title=f"Fig. 3 — mean completion time vs gain K, workload {self.workload}",
        )
        for i, gain in enumerate(self.gains):
            table.add_row(
                {
                    "gain": float(gain),
                    "theory": float(self.theory[i]),
                    "monte_carlo": float(self.monte_carlo[i]),
                    "experiment": float(self.experiment[i]),
                    "theory_no_failure": float(self.theory_no_failure[i]),
                }
            )
        return table

    def render(self) -> str:
        """Plain-text rendering of the figure's series and headline numbers."""
        lines = [format_table(self.as_table(), float_format="{:.2f}"), ""]
        lines.append(f"optimal gain (theory, failure):    {self.optimal_gain_theory:.2f}")
        lines.append(f"optimal gain (theory, no failure): {self.optimal_gain_no_failure:.2f}")
        lines.append(
            f"minimum mean completion time:      {self.minimum_mean_completion_time:.2f} s"
        )
        return "\n".join(lines)


def run(
    params: Optional[SystemParameters] = None,
    workload: Sequence[int] = common.PRIMARY_WORKLOAD,
    gains: Optional[Sequence[float]] = None,
    mc_realisations: int = 200,
    experiment_realisations: int = 20,
    seed: int = 303,
    sender: int = 0,
    receiver: int = 1,
    workers: Optional[int] = None,
    executor=None,
    store=None,
    refresh: bool = False,
) -> Fig3Result:
    """Regenerate the four curves of Fig. 3.

    The Monte-Carlo column runs through the unified engine:
    ``workers``/``executor`` parallelise it over processes (results are
    bit-identical to the serial path — block seeding is
    executor-independent), an external ``executor`` is reused as-is and
    never shut down here, and a shard ``store`` gives each gain point
    block-level caching and resume.
    """
    params = params if params is not None else common.default_parameters()
    gain_grid = np.asarray(gains if gains is not None else common.GAIN_GRID, dtype=float)
    workload_t = tuple(int(m) for m in workload)

    solver = CompletionTimeSolver(params)
    theory = solver.gain_sweep(workload_t, gain_grid, sender=sender, receiver=receiver)

    nf_solver = CompletionTimeSolver(params.without_failures())
    theory_nf = nf_solver.gain_sweep(
        workload_t, gain_grid, sender=sender, receiver=receiver
    )

    mc = np.empty_like(gain_grid)
    exp = np.empty_like(gain_grid)
    seeds = spawn_seeds(seed, 2 * len(gain_grid))
    for i, gain in enumerate(gain_grid):
        policy = LBP1(float(gain), sender=sender, receiver=receiver)
        mc[i] = run_engine(
            EngineRequest(
                params=params,
                policy=policy,
                workload=workload_t,
                num_realisations=mc_realisations,
                seed=seeds[2 * i],
                workers=workers,
                executor=executor,
                store=store,
                refresh=refresh,
            )
        ).estimate.mean_completion_time
        exp[i] = TestbedExperiment.run_many(
            params,
            policy,
            workload_t,
            num_realisations=experiment_realisations,
            seed=seeds[2 * i + 1],
        ).mean_completion_time

    return Fig3Result(
        gains=gain_grid,
        theory=theory,
        theory_no_failure=theory_nf,
        monte_carlo=mc,
        experiment=exp,
        workload=workload_t,
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run(mc_realisations=100, experiment_realisations=10).render())
