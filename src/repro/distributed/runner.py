"""The sharded entry point of the unified Monte-Carlo engine.

``run_sharded_spec`` used to own the whole plan → cache check → schedule →
merge pipeline; that pipeline was promoted to
:mod:`repro.montecarlo.engine` and now serves *every* Monte-Carlo run —
serial, pooled, vectorized or sharded.  This module keeps the
spec-oriented entry point (and the historical re-exports) as a thin
wrapper: ``shards >= 1`` specs dispatch through the engine with the spec's
shard count, shard store and scheduler options.

Because block samples depend only on (master seed, block index, backend)
and the merge is exact, the returned estimate is bit-identical for every
shard count and executor — the property the distributed test-suite pins
with ``==``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Union

from repro.distributed.executors import ShardExecutor
from repro.distributed.store import ShardStore
from repro.distributed.work import int_seed, policy_spec_of  # noqa: F401  (re-export)
from repro.montecarlo.engine import EngineReport, EngineRequest, run_engine
from repro.scenarios.spec import ScenarioSpec

#: Historical name of the engine's report type (pre-unification).
ShardedRunReport = EngineReport


def run_sharded_spec(
    spec: ScenarioSpec,
    executor: Union[None, str, ShardExecutor] = None,
    workers: Optional[int] = None,
    store: Optional[ShardStore] = None,
    use_store: bool = True,
    refresh: bool = False,
    confidence_level: float = 0.95,
    assignment: str = "least-loaded",
    max_attempts: int = 3,
    shard_timeout: Optional[float] = None,
    slot_wait: float = 60.0,
    on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> EngineReport:
    """Run a sharded Monte-Carlo ensemble and merge it deterministically.

    ``executor`` accepts a name (``inline``/``process``) or a live
    :class:`ShardExecutor` instance (the service passes its worker-board
    executor here); instances are left open, named executors are closed
    after the run.  ``use_store=False`` disables shard-level caching (the
    benchmark harness measures computation, not disk reads); ``refresh``
    recomputes every block but still persists the results — how a
    ``--force`` run repairs the shard store.
    """
    if spec.shards < 1:
        raise ValueError(
            f"spec {spec.name!r} has shards={spec.shards}; the sharded "
            "runner needs shards >= 1"
        )
    if use_store:
        store = store if store is not None else ShardStore()
    else:
        store = None
    return run_engine(
        EngineRequest(
            spec=spec,
            executor=executor,
            workers=workers,
            store=store,
            refresh=refresh,
            confidence_level=confidence_level,
            assignment=assignment,
            max_attempts=max_attempts,
            shard_timeout=shard_timeout,
            slot_wait=slot_wait,
            on_event=on_event,
        )
    )
