"""Tests for the application layer (matrix-multiplication tasks)."""

import numpy as np
import pytest

from repro.analysis.fitting import fit_exponential
from repro.cluster.task import Task
from repro.testbed.application import ApplicationLayer, MatrixWorkloadGenerator


class TestMatrixWorkloadGenerator:
    def test_generates_requested_counts(self, rng):
        generator = MatrixWorkloadGenerator()
        tasks = generator.generate([3, 0, 2], rng)
        assert [len(tasks[i]) for i in range(3)] == [3, 0, 2]
        assert all(task.origin == 0 for task in tasks[0])

    def test_sizes_are_random_and_positive(self, rng):
        generator = MatrixWorkloadGenerator()
        tasks = generator.generate([200], rng)[0]
        sizes = np.array([task.size for task in tasks])
        assert np.all(sizes > 0)
        assert sizes.std() > 0

    def test_sizes_exponentially_distributed(self, rng):
        generator = MatrixWorkloadGenerator(mean_size=2.0)
        tasks = generator.generate([5000], rng)[0]
        fit = fit_exponential([task.size for task in tasks])
        assert fit.mean == pytest.approx(2.0, rel=0.05)
        assert fit.acceptable

    def test_row_length_scales_with_size(self):
        generator = MatrixWorkloadGenerator(base_row_length=100)
        small = Task(task_id=0, origin=0, size=0.5)
        large = Task(task_id=1, origin=0, size=2.0)
        assert generator.row_length(large) > generator.row_length(small)
        assert generator.row_length(Task(task_id=2, origin=0, size=1e-9)) >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MatrixWorkloadGenerator(mean_size=0.0)
        with pytest.raises(ValueError):
            MatrixWorkloadGenerator(base_row_length=0)
        with pytest.raises(ValueError):
            MatrixWorkloadGenerator().generate([-1], np.random.default_rng(0))


class TestApplicationLayer:
    def test_execution_time_is_exponential_with_service_rate(self, rng):
        generator = MatrixWorkloadGenerator()
        application = ApplicationLayer(0, service_rate=1.86, generator=generator)
        tasks = generator.generate([5000], rng)[0]
        times = [application.execution_time(task) for task in tasks]
        fit = fit_exponential(times)
        assert fit.rate == pytest.approx(1.86, rel=0.05)

    def test_faster_node_executes_faster(self, rng):
        generator = MatrixWorkloadGenerator()
        slow = ApplicationLayer(0, service_rate=1.08, generator=generator)
        fast = ApplicationLayer(1, service_rate=1.86, generator=generator)
        task = Task(task_id=0, origin=0, size=1.0)
        assert fast.execution_time(task) < slow.execution_time(task)

    def test_record_execution_accumulates(self):
        application = ApplicationLayer(0, service_rate=1.0)
        task = Task(task_id=0, origin=0, size=1.0)
        application.record_execution(task, 0.9)
        application.record_execution(task, 1.1)
        assert len(application.executions) == 2
        assert application.measured_times.mean() == pytest.approx(1.0)

    def test_execute_real_returns_matrix_product(self, rng):
        application = ApplicationLayer(0, service_rate=1.0, matrix_size=16)
        task = Task(task_id=0, origin=0, size=1.0)
        result = application.execute_real(task, rng)
        assert result.shape[1] == 16
        assert np.all(np.isfinite(result))

    def test_static_matrix_is_reused(self, rng):
        application = ApplicationLayer(0, service_rate=1.0, matrix_size=8)
        task = Task(task_id=0, origin=0, size=1.0)
        application.execute_real(task, rng)
        first = application._static_matrix
        application.execute_real(task, rng)
        assert application._static_matrix is first

    def test_invalid_service_rate(self):
        with pytest.raises(ValueError):
            ApplicationLayer(0, service_rate=0.0)
