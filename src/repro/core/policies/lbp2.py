"""LBP-2: the reactive (act-on-failure) policy (Section 2.2 of the paper).

LBP-2 consists of two mechanisms:

1. **Initial balancing** at ``t = 0`` that *ignores* the possibility of
   failure: the excess-load partition of eqs. (6)–(7) with a gain ``K``
   chosen to minimise the expected completion time of the *no-failure*
   model (the authors' earlier work; reproduced in
   :mod:`repro.core.nofailure` / :func:`repro.core.optimize.optimal_gain_no_failure`).

2. **Compensation at every failure instant**: when node ``j`` fails, its
   backup system immediately transfers

   .. math::

       L^F_{ij} = \\Bigl\\lfloor
           \\frac{\\lambda_{ri}}{\\lambda_{fi} + \\lambda_{ri}} \\cdot
           \\frac{\\lambda_{di}}{\\sum_k \\lambda_{dk}} \\cdot
           \\frac{\\lambda_{dj}}{\\lambda_{rj}}
       \\Bigr\\rfloor

   tasks to every other node ``i`` (eq. (8)).  The last factor is the mean
   backlog node ``j`` accumulates while it is down (its processing speed
   times its mean recovery time); the middle factor splits that backlog in
   proportion to the receivers' speeds; and the first factor discounts each
   receiver by its steady-state availability.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.core.parameters import SystemParameters
from repro.core.policies.base import LoadBalancingPolicy, Transfer
from repro.core.policies.excess import initial_excess_transfers


def compensation_transfer_sizes(
    failed_node: int, params: SystemParameters
) -> Tuple[int, ...]:
    """Number of tasks ``L^F_{i,failed}`` sent to every node ``i`` (eq. (8)).

    Entry ``failed_node`` of the returned tuple is 0.  The sizes depend only
    on the system parameters (not on the current queue sizes), which is why
    the paper notes the transfer "happens to be a constant".
    """
    n = params.num_nodes
    if not 0 <= failed_node < n:
        raise IndexError(f"node index {failed_node} out of range for {n} nodes")

    failed = params.node(failed_node)
    if failed.recovery_rate == 0:
        # A node that cannot fail never triggers a compensation action; treat
        # a hypothetical failure as producing no backlog to redistribute.
        return tuple(0 for _ in range(n))

    backlog = failed.service_rate / failed.recovery_rate  # λ_dj / λ_rj
    total_rate = params.total_service_rate

    sizes = []
    for i in range(n):
        if i == failed_node:
            sizes.append(0)
            continue
        receiver = params.node(i)
        share = receiver.service_rate / total_rate
        sizes.append(int(math.floor(receiver.availability * share * backlog)))
    return tuple(sizes)


class LBP2(LoadBalancingPolicy):
    """Initial excess-load balancing plus compensation at every failure.

    Parameters
    ----------
    gain:
        Gain ``K ∈ [0, 1]`` of the *initial* balancing action.  The paper
        selects it with the no-failure model (for the paper's test-bed the
        optimum is 1.0 for most workloads, 0.8–0.95 for the reversed ones,
        Table 2); :func:`repro.core.optimize.optimal_gain_no_failure`
        automates that selection.
    compensate:
        Whether to send the eq. (8) compensation transfers at failure
        instants (switching this off recovers a "initial balancing only"
        ablation).
    """

    name = "LBP-2"

    def __init__(self, gain: float = 1.0, compensate: bool = True) -> None:
        if not 0.0 <= gain <= 1.0:
            raise ValueError(f"gain must lie in [0, 1], got {gain!r}")
        self.gain = float(gain)
        self.compensate = bool(compensate)

    # -- policy interface -----------------------------------------------------

    def initial_transfers(
        self, workload: Sequence[int], params: SystemParameters
    ) -> List[Transfer]:
        loads = self._validated(workload, params)
        return initial_excess_transfers(loads, params, self.gain)

    def on_failure(
        self,
        failed_node: int,
        queue_sizes: Sequence[int],
        params: SystemParameters,
        time: float = 0.0,
    ) -> List[Transfer]:
        if not self.compensate:
            return []
        sizes = compensation_transfer_sizes(failed_node, params)
        available = int(queue_sizes[failed_node])

        transfers: List[Transfer] = []
        for receiver, requested in enumerate(sizes):
            if requested <= 0:
                continue
            num = min(requested, available)
            if num <= 0:
                break
            transfers.append(Transfer(failed_node, receiver, num))
            available -= num
        return transfers

    def with_gain(self, gain: float) -> "LBP2":
        """A copy of this policy with a different initial gain."""
        return LBP2(gain, compensate=self.compensate)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"LBP2(gain={self.gain}, compensate={self.compensate})"
