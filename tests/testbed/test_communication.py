"""Tests for the emulated UDP/TCP communication layer."""

import numpy as np
import pytest

from repro.cluster.task import Task
from repro.core.parameters import NodeParameters, SystemParameters, TransferDelayModel
from repro.sim.engine import Environment
from repro.testbed.communication import (
    CommunicationLayer,
    StateInfoMessage,
    WirelessChannel,
)


def make_params(per_task=0.02):
    return SystemParameters(
        nodes=(NodeParameters(1.08), NodeParameters(1.86)),
        delay=TransferDelayModel(per_task),
    )


def make_channel(env, rng, loss=0.0, **kwargs):
    return WirelessChannel(env, make_params(), rng, state_loss_probability=loss, **kwargs)


class TestStateInfoMessage:
    def test_size_within_paper_range(self):
        message = StateInfoMessage(sender=0, queue_size=10, service_rate=1.08,
                                   timestamp=0.0, sequence=1)
        assert 20 <= message.size_bytes <= 34


class TestWirelessChannel:
    def test_validation(self, env, rng):
        with pytest.raises(ValueError):
            WirelessChannel(env, make_params(), rng, state_loss_probability=1.0)
        with pytest.raises(ValueError):
            WirelessChannel(env, make_params(), rng, state_delay_mean=-1.0)

    def test_state_delivery(self, env, rng):
        channel = make_channel(env, rng)
        received = []
        message = StateInfoMessage(0, 5, 1.0, 0.0, 1)
        channel.send_state(message, 1, lambda dst, msg: received.append((dst, msg)))
        env.run()
        assert received == [(1, message)]
        assert channel.log.state_messages_sent == 1
        assert channel.log.state_messages_lost == 0

    def test_state_loss(self, env):
        rng = np.random.default_rng(0)
        channel = make_channel(env, rng, loss=0.999)
        received = []
        for _ in range(50):
            channel.send_state(StateInfoMessage(0, 5, 1.0, 0.0, 1), 1,
                               lambda dst, msg: received.append(msg))
        env.run()
        assert channel.log.state_messages_lost > 40
        assert len(received) == 50 - channel.log.state_messages_lost

    def test_data_transfer_delivery_and_log(self, env, rng):
        channel = make_channel(env, rng, per_transfer_overhead=0.1)
        delivered = []
        tasks = [Task(task_id=i, origin=0) for i in range(5)]
        message = channel.send_data(0, 1, tasks, lambda dst, batch: delivered.append(batch))
        env.run()
        assert message.num_tasks == 5
        assert len(delivered) == 1 and len(delivered[0]) == 5
        assert channel.log.data_messages_sent == 1
        assert channel.log.data_tasks_sent == 5
        assert channel.log.data_transfer_time > 0.1

    def test_empty_data_message_rejected(self, env, rng):
        channel = make_channel(env, rng)
        with pytest.raises(ValueError):
            channel.send_data(0, 1, [], lambda dst, batch: None)

    def test_shared_medium_serialises_transfers(self, env, rng):
        """Two simultaneous transfers cannot overlap on the single channel."""
        params = SystemParameters(
            nodes=(NodeParameters(1.0), NodeParameters(1.0)),
            delay=TransferDelayModel(1.0, kind="deterministic"),
        )
        channel = WirelessChannel(env, params, rng, state_loss_probability=0.0)
        arrival_times = []
        deliver = lambda dst, batch: arrival_times.append(env.now)
        channel.send_data(0, 1, [Task(task_id=0, origin=0)], deliver)
        channel.send_data(1, 0, [Task(task_id=1, origin=1)], deliver)
        env.run()
        assert arrival_times == [pytest.approx(1.0), pytest.approx(2.0)]


class TestCommunicationLayer:
    def build_pair(self, env, rng):
        channel = make_channel(env, rng)
        endpoints = [CommunicationLayer(env, i, channel, 2) for i in range(2)]
        for endpoint in endpoints:
            endpoint.bind_state_dispatcher(
                lambda dst, msg: endpoints[dst].receive_state(msg)
            )
            endpoint.bind_data_handler(lambda dst, batch: None)
        return channel, endpoints

    def test_broadcast_reaches_peer(self, env, rng):
        _, endpoints = self.build_pair(env, rng)
        endpoints[0].broadcast_state(queue_size=42, service_rate=1.08)
        env.run()
        assert endpoints[1].peer_state[0].queue_size == 42
        assert endpoints[0].peer_state[0].queue_size == 42  # self report

    def test_full_view_detection(self, env, rng):
        _, endpoints = self.build_pair(env, rng)
        assert not endpoints[1].has_full_view()
        endpoints[0].broadcast_state(10, 1.0)
        endpoints[1].broadcast_state(20, 2.0)
        env.run()
        assert endpoints[0].has_full_view()
        assert endpoints[1].has_full_view()

    def test_known_queue_sizes_with_default(self, env, rng):
        _, endpoints = self.build_pair(env, rng)
        endpoints[1].broadcast_state(7, 1.0)
        env.run()
        assert endpoints[0].known_queue_sizes(default=-1) == [-1, 7]

    def test_newer_sequence_wins(self, env, rng):
        _, endpoints = self.build_pair(env, rng)
        endpoints[0].broadcast_state(10, 1.0)
        endpoints[0].broadcast_state(3, 1.0)
        env.run()
        assert endpoints[1].peer_state[0].queue_size == 3

    def test_unbound_dispatchers_raise(self, env, rng):
        channel = make_channel(env, rng)
        endpoint = CommunicationLayer(env, 0, channel, 2)
        with pytest.raises(RuntimeError):
            endpoint.broadcast_state(1, 1.0)
        with pytest.raises(RuntimeError):
            endpoint.send_tasks(1, [Task(task_id=0, origin=0)])

    def test_send_tasks_routes_through_channel(self, env, rng):
        channel = make_channel(env, rng)
        delivered = []
        endpoint = CommunicationLayer(env, 0, channel, 2)
        endpoint.bind_data_handler(lambda dst, batch: delivered.append((dst, len(batch))))
        endpoint.bind_state_dispatcher(lambda dst, msg: None)
        endpoint.send_tasks(1, [Task(task_id=0, origin=0), Task(task_id=1, origin=0)])
        env.run()
        assert delivered == [(1, 2)]
