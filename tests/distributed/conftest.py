"""Fixtures for the distributed-execution tests."""

from __future__ import annotations

import asyncio
import threading

import pytest


class BackgroundService:
    """Run a ResultsService on its own event-loop thread.

    A sibling of the harness in ``tests/service/conftest.py`` (conftest
    modules are not importable across test packages); keyword arguments go
    to :class:`ResultsService`, so the distributed tests can shrink worker
    and scheduler timeouts.
    """

    def __init__(self, workers=None, **service_kwargs) -> None:
        self.workers = workers
        self.service_kwargs = service_kwargs
        self.url = None
        self._loop = None
        self._stop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        from repro.service.app import ResultsService

        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        service = ResultsService(workers=self.workers, **self.service_kwargs)
        host, port = await service.start("127.0.0.1", 0)
        self.url = f"http://{host}:{port}"
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await service.stop()

    def __enter__(self) -> "BackgroundService":
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("service did not start within 10s")
        return self

    def __exit__(self, *exc_info) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)


@pytest.fixture
def background_service():
    """Factory for live in-process services (context managers)."""
    return BackgroundService
